//! Predicate statistics estimation — paper, Section 4.2.
//!
//! The optimizer needs, per foreign join predicate `col in field`, the
//! selectivity `s_i` (probability a term from the column occurs in the
//! field) and the fanout `f_i` (expected matching documents per term). Two
//! sources are implemented:
//!
//! * [`sample_predicate`] — the paper's method: sample terms from the
//!   column and send single-term searches to the text system. The searches
//!   go through the metered server (the sampling cost is real and is
//!   "amortized over queries with the same predicate" — callers measure it
//!   separately from query execution).
//! * [`export_predicate`] — the Section 8 alternative: compute the same
//!   quantities from the server's exported vocabulary statistics, free of
//!   query charges.
//!
//! Sampling is deterministic (fixed-stride over the distinct values) so
//! every experiment is reproducible without a random-number dependency.

use textjoin_rel::ops::project_distinct;
use textjoin_rel::schema::ColId;
use textjoin_rel::table::Table;
use textjoin_text::doc::FieldId;
use textjoin_text::expr::SearchExpr;
use textjoin_text::server::TextError;
use textjoin_text::service::TextService;
use textjoin_text::stats::VocabularyStats;
use textjoin_text::token::normalize_phrase;

use crate::cost::params::PredStats;

/// Default number of sampled terms per predicate.
pub const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Deterministic fixed-stride sample of up to `k` items from `n` indices.
fn stride_sample(n: usize, k: usize) -> Vec<usize> {
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if n <= k {
        return (0..n).collect();
    }
    let step = n as f64 / k as f64;
    (0..k).map(|i| (i as f64 * step) as usize).collect()
}

/// Estimates `s_i` and `f_i` for the predicate `col in field` by sending
/// up to `sample_size` single-term searches to `server`.
///
/// Selectivity is the fraction of sampled terms with at least one match;
/// fanout the mean result size over all sampled terms (zero-match terms
/// included, matching the `V = n × F` derivation); `list_len` the mean
/// postings processed per search.
pub fn sample_predicate(
    server: &dyn TextService,
    rel: &Table,
    col: ColId,
    field: FieldId,
    sample_size: usize,
) -> Result<PredStats, TextError> {
    let distinct = project_distinct(rel, &[col]);
    let values: Vec<&str> = distinct
        .iter()
        .filter_map(|t| t.get(ColId(0)).as_str())
        .filter(|s| !s.trim().is_empty())
        .collect();
    let picks = stride_sample(values.len(), sample_size);
    if picks.is_empty() {
        return Ok(PredStats {
            selectivity: 0.0,
            fanout: 0.0,
            distinct: values.len() as f64,
            list_len: 0.0,
        });
    }
    let mut hits = 0usize;
    let mut total_docs = 0usize;
    let mut total_postings = 0u64;
    for &i in &picks {
        let before = server.usage();
        let result = server.search(&SearchExpr::term_in(values[i], field))?;
        let delta = server.usage().since(&before);
        total_postings += delta.postings_processed;
        if !result.is_empty() {
            hits += 1;
            total_docs += result.len();
        }
    }
    let n = picks.len() as f64;
    Ok(PredStats {
        selectivity: hits as f64 / n,
        fanout: total_docs as f64 / n,
        distinct: values.len() as f64,
        list_len: total_postings as f64 / n,
    })
}

/// Computes the same statistics from the server's exported vocabulary
/// statistics (Section 8 extension) — exact over all distinct column
/// values, and free of query charges.
///
/// Multi-word column values are scored by their rarest word (the
/// fully-correlated reading of a phrase: it matches at most as often as
/// its rarest word), while the lists of *all* words are counted as read.
pub fn export_predicate(
    export: &VocabularyStats,
    rel: &Table,
    col: ColId,
    field: FieldId,
) -> PredStats {
    let distinct = project_distinct(rel, &[col]);
    let mut n = 0usize;
    let mut hits = 0usize;
    let mut total_docs = 0u64;
    let mut total_postings = 0u64;
    for t in distinct.iter() {
        let Some(v) = t.get(ColId(0)).as_str() else {
            continue;
        };
        let words = normalize_phrase(v);
        if words.is_empty() {
            continue;
        }
        n += 1;
        let mut min_df = u32::MAX;
        for w in &words {
            let df = export.fanout(w, field);
            min_df = min_df.min(df);
            total_postings += u64::from(df);
        }
        if min_df > 0 && min_df != u32::MAX {
            hits += 1;
            total_docs += u64::from(min_df);
        }
    }
    if n == 0 {
        return PredStats {
            selectivity: 0.0,
            fanout: 0.0,
            distinct: 0.0,
            list_len: 0.0,
        };
    }
    PredStats {
        selectivity: hits as f64 / n as f64,
        fanout: total_docs as f64 / n as f64,
        distinct: n as f64,
        list_len: total_postings as f64 / n as f64,
    }
}

/// Statistics of a conjunction of constant text selections: `(joint
/// fanout, summed list lengths, term count)`. Joint fanout is the
/// fully-correlated estimate (the rarest selection's fanout); with no
/// selections it is `D`.
pub fn export_selections(
    export: &VocabularyStats,
    selections: &[crate::methods::TextSelection],
) -> (f64, f64, usize) {
    if selections.is_empty() {
        return (export.doc_count as f64, 0.0, 0);
    }
    let mut min_fanout = f64::INFINITY;
    let mut postings = 0.0;
    for s in selections {
        let words = normalize_phrase(&s.term);
        let mut phrase_min = u32::MAX;
        for w in &words {
            let df = export.fanout(w, s.field);
            phrase_min = phrase_min.min(df);
            postings += f64::from(df);
        }
        if phrase_min == u32::MAX {
            phrase_min = 0;
        }
        min_fanout = min_fanout.min(f64::from(phrase_min));
    }
    (min_fanout, postings, selections.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testkit::{corpus, student};
    use crate::methods::TextSelection;

    #[test]
    fn stride_sample_properties() {
        assert_eq!(stride_sample(0, 5), Vec::<usize>::new());
        assert_eq!(stride_sample(3, 5), vec![0, 1, 2]);
        let s = stride_sample(100, 10);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.last().unwrap() < 100);
    }

    #[test]
    fn sampling_hits_real_frequencies() {
        let rel = student();
        let server = corpus();
        let au = server.collection().schema().field_by_name("author").unwrap();
        // Exhaustive sample (4 names ≤ sample size).
        let ps = sample_predicate(&server, &rel, rel.col("name"), au, 20).unwrap();
        // Gravano, Kao, Pham occur; DeSmedt does not → s = 3/4.
        assert!((ps.selectivity - 0.75).abs() < 1e-9);
        assert_eq!(ps.distinct, 4.0);
        // fanout: (1+1+1+0)/4.
        assert!((ps.fanout - 0.75).abs() < 1e-9);
        // The sampling was charged.
        assert_eq!(server.usage().invocations, 4);
    }

    #[test]
    fn sampling_respects_sample_size() {
        let rel = student();
        let server = corpus();
        let au = server.collection().schema().field_by_name("author").unwrap();
        sample_predicate(&server, &rel, rel.col("name"), au, 2).unwrap();
        assert_eq!(server.usage().invocations, 2);
    }

    #[test]
    fn export_matches_sampling_exhaustive() {
        let rel = student();
        let server = corpus();
        let au = server.collection().schema().field_by_name("author").unwrap();
        let sampled = sample_predicate(&server, &rel, rel.col("name"), au, 100).unwrap();
        let export = server.export_stats();
        let exported = export_predicate(&export, &rel, rel.col("name"), au);
        assert!((sampled.selectivity - exported.selectivity).abs() < 1e-9);
        assert!((sampled.fanout - exported.fanout).abs() < 1e-9);
    }

    #[test]
    fn export_is_free() {
        let rel = student();
        let server = corpus();
        let au = server.collection().schema().field_by_name("author").unwrap();
        let export = server.export_stats();
        let _ = export_predicate(&export, &rel, rel.col("name"), au);
        assert_eq!(server.usage().invocations, 0);
    }

    #[test]
    fn selection_stats() {
        let server = corpus();
        let ts = server.collection().schema();
        let export = server.export_stats();
        let ti = ts.field_by_name("title").unwrap();
        let (fan, postings, terms) = export_selections(
            &export,
            &[TextSelection {
                term: "text".into(),
                field: ti,
            }],
        );
        assert_eq!(fan, 2.0); // doc0, doc1 have 'text' in title
        assert!(postings >= 2.0);
        assert_eq!(terms, 1);
        // No selections: fanout is D.
        let (fan, _, terms) = export_selections(&export, &[]);
        assert_eq!(fan, 4.0);
        assert_eq!(terms, 0);
    }

    #[test]
    fn empty_relation_zero_stats() {
        let server = corpus();
        let au = server.collection().schema().field_by_name("author").unwrap();
        let schema = textjoin_rel::schema::RelSchema::from_columns(vec![(
            "name",
            textjoin_rel::value::ValueType::Str,
        )]);
        let rel = Table::new("empty", schema);
        let ps = sample_predicate(&server, &rel, ColId(0), au, 10).unwrap();
        assert_eq!(ps.selectivity, 0.0);
        assert_eq!(ps.fanout, 0.0);
    }

    #[test]
    fn multiword_values_use_rarest_word() {
        use textjoin_rel::schema::RelSchema;
        use textjoin_rel::tuple;
        use textjoin_rel::value::ValueType;
        let server = corpus();
        let ti = server.collection().schema().field_by_name("title").unwrap();
        let schema = RelSchema::from_columns(vec![("phrase", ValueType::Str)]);
        let mut rel = Table::new("p", schema);
        rel.push(tuple!["text retrieval"]); // 'text' df=2, 'retrieval' df=1
        let export = server.export_stats();
        let ps = export_predicate(&export, &rel, ColId(0), ti);
        assert_eq!(ps.fanout, 1.0, "rarest word bounds the phrase fanout");
        assert_eq!(ps.selectivity, 1.0);
        assert!(ps.list_len >= 3.0, "both lists read");
    }
}
