//! Runtime re-optimization — the safeguard the paper points to at the end
//! of Section 5: *"probe, followed by relational text processing … suffers
//! from the danger that if the selectivity and fanout estimates are
//! unreliable, then too many documents are fetched. We rely on runtime
//! optimization techniques to address such difficulties [CDY]."*
//!
//! The fetch-heavy methods (RTP, P+RTP) commit to shipping every candidate
//! document before any relational matching happens. The guarded executors
//! here bound that commitment: the candidate set is counted *before*
//! long-form retrieval, and if it exceeds a document budget the plan is
//! abandoned mid-flight in favor of tuple substitution, whose cost does
//! not depend on the misestimated fanout. Whatever was already spent
//! (the selection search / the probes) stays on the meter — runtime
//! re-optimization is not free, it is insurance.

use std::collections::BTreeSet;

use textjoin_rel::table::Table;
use textjoin_text::doc::DocId;
use textjoin_text::expr::SearchExpr;
use textjoin_text::server::TextError;

use crate::methods::cache::{ProbeCache, ProbeOutcome};
use crate::methods::ts::tuple_substitution;
use crate::methods::{ExecContext, ForeignJoin, MethodError, MethodOutcome};

/// What a guarded execution did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardVerdict {
    /// The candidate set fit the budget; the primary method completed.
    PrimaryCompleted,
    /// The budget tripped; tuple substitution finished the query.
    FellBackToTs,
}

/// A guarded outcome: the result plus what happened.
#[derive(Debug, Clone)]
pub struct GuardedOutcome {
    /// The method outcome (its report covers everything spent, including
    /// the abandoned phase).
    pub outcome: MethodOutcome,
    /// Whether the fallback fired.
    pub verdict: GuardVerdict,
    /// Candidate documents counted at the decision point.
    pub candidates_seen: usize,
}

/// RTP with a candidate-document budget: the selection search runs, and if
/// it matches more than `doc_budget` documents the long-form fetch is
/// abandoned and tuple substitution answers the query instead.
pub fn guarded_rtp(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    doc_budget: usize,
) -> Result<GuardedOutcome, MethodError> {
    fj.validate()?;
    if fj.selections.is_empty() {
        return Err(MethodError::NotApplicable(
            "RTP needs selection conditions on the text data".into(),
        ));
    }
    let before = ctx.server.usage();
    let sel = fj.selections_expr().expect("selections checked non-empty");
    let result = match ctx.search(&sel) {
        Ok(r) => r,
        // The guard's selection search could not be completed — the server
        // stayed down past the retry budget, or renegotiated its term cap
        // below the selection. Degrade to tuple substitution instead of
        // failing the query; the failed attempts stay on the meter.
        Err(e) if e.is_transient() || matches!(e, TextError::CapReduced { .. }) => {
            let mut out = tuple_substitution(ctx, fj, true)?;
            out.report.text = ctx.server.usage().since(&before);
            out.report.method = "RTP→TS".into();
            return Ok(GuardedOutcome {
                outcome: out,
                verdict: GuardVerdict::FellBackToTs,
                candidates_seen: 0,
            });
        }
        Err(e) => return Err(e.into()),
    };
    let candidates = result.len();

    if candidates <= doc_budget {
        // Within budget: complete RTP from the candidate set the guard
        // already has in hand — the selection search is billed exactly
        // once (`rtp_with_candidates`).
        let mut out = crate::methods::rtp::rtp_with_candidates(ctx, fj, result)?;
        out.report.text = ctx.server.usage().since(&before);
        out.report.method = "RTP(guarded)".into();
        return Ok(GuardedOutcome {
            outcome: out,
            verdict: GuardVerdict::PrimaryCompleted,
            candidates_seen: candidates,
        });
    }
    // Budget exceeded: abandon before fetching anything; fall back.
    let mut out = tuple_substitution(ctx, fj, true)?;
    out.report.text = ctx.server.usage().since(&before);
    out.report.method = "RTP→TS".into();
    Ok(GuardedOutcome {
        outcome: out,
        verdict: GuardVerdict::FellBackToTs,
        candidates_seen: candidates,
    })
}

/// P+RTP with a candidate budget: the probe phase runs as usual; if the
/// union of probe result sets exceeds `doc_budget`, the document fetch is
/// abandoned and the surviving tuples are finished with tuple substitution
/// (i.e., the plan degrades to P+TS, keeping the probes' pruning).
pub fn guarded_probe_rtp(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    probe_cols: &[usize],
    doc_budget: usize,
) -> Result<GuardedOutcome, MethodError> {
    fj.validate()?;
    if probe_cols.is_empty() || probe_cols.iter().any(|&i| i >= fj.k()) {
        return Err(MethodError::BadProbeColumns(format!(
            "invalid probe columns {probe_cols:?}"
        )));
    }
    let before = ctx.server.usage();

    // Probe phase (identical to probe-first P+RTP).
    let probe_col_ids: Vec<textjoin_rel::schema::ColId> =
        probe_cols.iter().map(|&i| fj.join_cols[i]).collect();
    let mut cache = ProbeCache::new();
    let mut matched: BTreeSet<DocId> = BTreeSet::new();
    for (_, rows) in textjoin_rel::ops::group_by(fj.rel, &probe_col_ids) {
        let t = &fj.rel.rows()[rows[0]];
        let Some(key) = fj.key_values(t, probe_cols) else {
            continue;
        };
        let expr: SearchExpr = fj
            .instantiated_search(t, probe_cols)
            .expect("key_values succeeded");
        match ctx.try_probe(&expr) {
            Some(ids) => {
                cache.record(
                    ctx.server.topology_epoch(),
                    key,
                    if ids.is_empty() {
                        ProbeOutcome::Fail
                    } else {
                        ProbeOutcome::Success
                    },
                );
                matched.extend(ids);
            }
            // Probe outcome unknown: never prune without a proven fail, so
            // the key is kept. Its candidate documents stay uncounted; the
            // primary path re-probes with its own degradation if chosen.
            None => cache.record(ctx.server.topology_epoch(), key, ProbeOutcome::Success),
        }
    }
    let candidates = matched.len();

    if candidates <= doc_budget {
        let mut out = crate::methods::probe::probe_rtp(ctx, fj, probe_cols)?;
        out.report.text = ctx.server.usage().since(&before);
        out.report.method = format!("{}(guarded)", out.report.method);
        return Ok(GuardedOutcome {
            outcome: out,
            verdict: GuardVerdict::PrimaryCompleted,
            candidates_seen: candidates,
        });
    }

    // Too many candidates: degrade to tuple substitution over the
    // survivors — the probes' pruning is kept, the fetch is avoided.
    let mut survivors = Table::new(format!("{}-survivors", fj.rel.name()), fj.rel.schema().clone());
    for t in fj.rel.iter() {
        if let Some(key) = fj.key_values(t, probe_cols) {
            if cache.lookup(ctx.server.topology_epoch(), &key) == Some(ProbeOutcome::Success) {
                survivors.push(t.clone());
            }
        }
    }
    let reduced = ForeignJoin {
        rel: &survivors,
        join_cols: fj.join_cols.clone(),
        join_fields: fj.join_fields.clone(),
        selections: fj.selections.clone(),
        projection: fj.projection,
    };
    let mut out = tuple_substitution(ctx, &reduced, true)?;
    out.report.text = ctx.server.usage().since(&before);
    out.report.method = "P+RTP→TS".into();
    Ok(GuardedOutcome {
        outcome: out,
        verdict: GuardVerdict::FellBackToTs,
        candidates_seen: candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testkit::{corpus, student};
    use crate::methods::{Projection, TextSelection};

    fn selection_join<'a>(
        rel: &'a textjoin_rel::table::Table,
        server: &textjoin_text::server::TextServer,
    ) -> ForeignJoin<'a> {
        let ts = server.collection().schema();
        ForeignJoin {
            rel,
            join_cols: vec![rel.col("name")],
            join_fields: vec![ts.field_by_name("author").unwrap()],
            selections: vec![TextSelection {
                term: "text".into(),
                field: ts.field_by_name("title").unwrap(),
            }],
            projection: Projection::Full,
        }
    }

    #[test]
    fn guarded_rtp_within_budget_completes() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = selection_join(&rel, &server);
        let g = guarded_rtp(&ctx, &fj, 100).unwrap();
        assert_eq!(g.verdict, GuardVerdict::PrimaryCompleted);
        assert_eq!(g.candidates_seen, 2); // two 'text'-titled docs
        assert_eq!(g.outcome.table.len(), 2);
        // The guard threads its candidate search through the completion:
        // one search total, not a repeated one.
        assert_eq!(g.outcome.report.text.invocations, 1);
    }

    #[test]
    fn guarded_rtp_degrades_to_ts_when_selection_search_stays_down() {
        use textjoin_text::faults::{Fault, FaultPlan};
        use textjoin_text::server::TextServer;

        let rel = student();
        let base = corpus();
        let mut server = TextServer::new(base.collection().clone());
        // The first 4 search ops (= the guard's selection search and all
        // its retries) fail; everything after succeeds, so the TS fallback
        // runs cleanly.
        server.set_fault_plan(FaultPlan::scripted(vec![
            (0, Fault::Unavailable),
            (1, Fault::Unavailable),
            (2, Fault::Unavailable),
            (3, Fault::Unavailable),
        ]));
        let ctx = ExecContext::new(&server);
        let fj = selection_join(&rel, &server);
        let g = guarded_rtp(&ctx, &fj, 100).unwrap();
        assert_eq!(g.verdict, GuardVerdict::FellBackToTs);
        assert_eq!(g.outcome.report.method, "RTP→TS");
        assert_eq!(g.outcome.table.len(), 2, "same answer as clean RTP");
        assert_eq!(g.outcome.report.text.faults, 4);
    }

    #[test]
    fn guarded_rtp_falls_back_and_matches_ts() {
        let rel = student();
        let s1 = corpus();
        let ctx1 = ExecContext::new(&s1);
        let fj1 = selection_join(&rel, &s1);
        let g = guarded_rtp(&ctx1, &fj1, 1).unwrap(); // budget < 2 candidates
        assert_eq!(g.verdict, GuardVerdict::FellBackToTs);
        assert_eq!(g.outcome.report.method, "RTP→TS");

        let s2 = corpus();
        let ctx2 = ExecContext::new(&s2);
        let fj2 = selection_join(&rel, &s2);
        let ts = tuple_substitution(&ctx2, &fj2, true).unwrap();
        let mut a: Vec<String> = g.outcome.table.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = ts.table.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "fallback answer equals TS");
        // The aborted selection search is still on the bill.
        assert_eq!(
            g.outcome.report.text.invocations,
            ts.report.text.invocations + 1
        );
    }

    #[test]
    fn guarded_probe_rtp_degrades_to_pts() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let ts_schema = server.collection().schema();
        let fj = ForeignJoin {
            rel: &rel,
            join_cols: vec![rel.col("advisor"), rel.col("name")],
            join_fields: vec![
                ts_schema.field_by_name("author").unwrap(),
                ts_schema.field_by_name("author").unwrap(),
            ],
            selections: vec![],
            projection: Projection::RelOnly,
        };
        // Garcia's probe matches 2 docs; budget 1 forces the fallback.
        let g = guarded_probe_rtp(&ctx, &fj, &[0], 1).unwrap();
        assert_eq!(g.verdict, GuardVerdict::FellBackToTs);
        assert_eq!(g.outcome.report.method, "P+RTP→TS");
        // Same single answer as any other method: Gravano.
        assert_eq!(g.outcome.table.len(), 1);
        // Large budget: primary completes with the same answer.
        let server2 = corpus();
        let ctx2 = ExecContext::new(&server2);
        let fj2 = ForeignJoin { rel: &rel, ..fj.clone() };
        let g2 = guarded_probe_rtp(&ctx2, &fj2, &[0], 100).unwrap();
        assert_eq!(g2.verdict, GuardVerdict::PrimaryCompleted);
        assert_eq!(g2.outcome.table.len(), 1);
    }

    #[test]
    fn guarded_rtp_requires_selections() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let mut fj = selection_join(&rel, &server);
        fj.selections.clear();
        assert!(guarded_rtp(&ctx, &fj, 10).is_err());
    }

    #[test]
    fn guarded_probe_rtp_validates_columns() {
        let rel = student();
        let server = corpus();
        let ctx = ExecContext::new(&server);
        let fj = selection_join(&rel, &server);
        assert!(guarded_probe_rtp(&ctx, &fj, &[], 10).is_err());
        assert!(guarded_probe_rtp(&ctx, &fj, &[9], 10).is_err());
    }
}
