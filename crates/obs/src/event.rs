//! The event model: charges, event kinds, and their JSONL encoding.

use std::fmt::Write as _;

/// The per-event charge delta, mirroring the `Usage` ledger field for
/// field. Counters are signed so a batch *rebate* (the batch extension
/// refunds per-call invocation and duplicate-transmission charges) can be
/// expressed as a negative charge; summing all charges of a trace then
/// reproduces the ledger delta exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Charge {
    /// Search invocations (negative for batch rebates).
    pub invocations: i64,
    /// Searches rejected at the term cap (never charged time).
    pub rejected: i64,
    /// Postings processed.
    pub postings: i64,
    /// Documents transmitted in short form (negative for batch rebates).
    pub docs_short: i64,
    /// Documents transmitted in long form.
    pub docs_long: i64,
    /// Simulated seconds of invocation cost.
    pub time_invocation: f64,
    /// Simulated seconds of posting processing.
    pub time_processing: f64,
    /// Simulated seconds of result transmission (both forms).
    pub time_transmission: f64,
    /// Injected faults observed.
    pub faults: i64,
    /// Client retries performed.
    pub retries: i64,
    /// Simulated seconds of retry backoff.
    pub time_backoff: f64,
}

impl Charge {
    /// Total simulated seconds of this charge — the amount it advances the
    /// simulated clock by.
    pub fn total(&self) -> f64 {
        self.time_invocation + self.time_processing + self.time_transmission + self.time_backoff
    }

    /// Whether every field is zero (the event is free).
    pub fn is_zero(&self) -> bool {
        *self == Charge::default()
    }

    /// Field-wise sum, for trace↔ledger reconciliation.
    pub fn accumulate(&mut self, other: &Charge) {
        self.invocations += other.invocations;
        self.rejected += other.rejected;
        self.postings += other.postings;
        self.docs_short += other.docs_short;
        self.docs_long += other.docs_long;
        self.time_invocation += other.time_invocation;
        self.time_processing += other.time_processing;
        self.time_transmission += other.time_transmission;
        self.faults += other.faults;
        self.retries += other.retries;
        self.time_backoff += other.time_backoff;
    }
}

/// One planner candidate's estimated cost vector, recorded when the
/// optimizer enumerates methods for a (sub)query.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerChoice {
    /// The candidate's display label (e.g. `P+RTP{name}`).
    pub label: String,
    /// Whether the planner picked this candidate (cheapest estimate).
    pub chosen: bool,
    /// The probe-column subset the candidate would probe on.
    pub probe_cols: Vec<usize>,
    /// Estimated invocation cost component (simulated seconds).
    pub invocation: f64,
    /// Estimated posting-processing component.
    pub processing: f64,
    /// Estimated transmission component.
    pub transmission: f64,
    /// Estimated relational text-processing component.
    pub rtp: f64,
    /// Estimated number of searches behind the invocation component.
    pub searches: f64,
    /// Estimated result cardinality (rows) the candidate would produce.
    pub est_rows: f64,
    /// Estimated postings the candidate's searches would process.
    pub est_postings: f64,
    /// The fault-adjusted effective invocation constant the estimate used
    /// (`c_i` plus expected backoff per invocation).
    pub effective_c_i: f64,
}

/// What happened. Every chargeable kind carries the exact [`Charge`] the
/// emitting ledger booked for it.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened (method, phase, or scatter/gather scope).
    SpanBegin {
        /// Trace-unique span id.
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Span label, e.g. `P+RTP` or `sj/package`.
        label: String,
    },
    /// A span closed. Emitted on drop, so error paths close their spans.
    SpanEnd {
        /// The span being closed.
        id: u64,
        /// The label it was opened with.
        label: String,
    },
    /// One server call: `search`, `probe`, `batch`, or `retrieve`.
    Call {
        /// Operation name.
        op: &'static str,
        /// Shard that served the call (`None` on an unsharded server or
        /// for charges on a sharded server's own ledger).
        shard: Option<usize>,
        /// Basic terms in the search expression (0 for retrieve).
        terms: u64,
        /// Failure description: injected fault, cap rejection, unknown
        /// docid. `None` on success.
        err: Option<String>,
        /// What the ledger booked for this call.
        charge: Charge,
    },
    /// The batch extension refunded per-call charges after a combined
    /// search; the charge fields are negative.
    Rebate {
        /// Shard whose ledger was adjusted, if sharded.
        shard: Option<usize>,
        /// The (negative) adjustment.
        charge: Charge,
    },
    /// The client backed off before a retry; simulated seconds charged to
    /// the emitting ledger.
    Backoff {
        /// Shard whose ledger absorbed the backoff, if sharded.
        shard: Option<usize>,
        /// Simulated seconds waited.
        seconds: f64,
        /// The booked charge (`retries + time_backoff`).
        charge: Charge,
    },
    /// The retry layer is about to re-issue an operation. Free.
    Retry {
        /// Shard being retried, if the retry loop is per-shard.
        shard: Option<usize>,
        /// 1-based count of failures absorbed so far.
        attempt: u32,
    },
    /// A shard leg moved to the next replica in its routing order (the
    /// previous replica was exhausted or skipped by an open breaker). Free:
    /// only real attempts are charged, and those carry their own events.
    Failover {
        /// The logical shard being served.
        shard: usize,
        /// The replica the leg moves *to*.
        replica: usize,
    },
    /// A shard's circuit breaker opened: its primary replica looks
    /// persistently dead, so calls route straight to the secondaries. Free.
    CircuitOpen {
        /// The shard whose primary is being bypassed.
        shard: usize,
        /// The EWMA fault rate (parts-per-1024) that tripped the breaker.
        rate: u32,
    },
    /// A shard's circuit breaker closed after a successful half-open probe
    /// of the primary. Free.
    CircuitClose {
        /// The shard whose primary is back in rotation.
        shard: usize,
        /// The EWMA fault rate (parts-per-1024) after the probe.
        rate: u32,
    },
    /// A hedge leg launched against a secondary replica because the
    /// primary leg exceeded the hedge latency threshold. Free: the hedge
    /// attempt's own call carries its charge, and the loser's charge is
    /// refunded by a [`Rebate`](Self::Rebate).
    Hedge {
        /// The logical shard being served.
        shard: usize,
        /// The replica the hedge leg runs on.
        replica: usize,
    },
    /// A leg was cancelled (the losing half of a hedged read, or a leg
    /// that would have completed past the query deadline). Free: the
    /// cancelled leg's already-booked charge is refunded by an adjacent
    /// [`Rebate`](Self::Rebate) event that carries the negative charge.
    Cancel {
        /// The logical shard whose leg was cancelled.
        shard: usize,
        /// The replica the cancelled leg ran on.
        replica: usize,
    },
    /// The query's virtual completion time passed its deadline; the
    /// executor degrades instead of erroring. Free.
    DeadlineMiss {
        /// Shard whose leg crossed the deadline, if attributable.
        shard: Option<usize>,
    },
    /// An online shard migration started: the plan's moves were staged and
    /// journaled. Free — transfer traffic is charged per batch.
    MigrationBegin {
        /// Number of moves in the plan.
        moves: u64,
        /// Total documents the plan intends to transfer.
        docs: u64,
        /// Topology epoch the migration started from.
        epoch: u64,
    },
    /// One migration batch committed: its documents changed owner and the
    /// topology epoch advanced. Free — the batch's transfer legs carry
    /// their own `xfer.out`/`xfer.in` [`Call`](Self::Call) charges.
    MigrationBatch {
        /// 0-based index of the move within the plan.
        mv: u64,
        /// Source shard.
        src: usize,
        /// Destination shard.
        dst: usize,
        /// Documents committed by this batch.
        docs: u64,
        /// Postings transferred by this batch.
        postings: u64,
        /// Highest committed global docid of the move so far (the journal
        /// high-water mark).
        high_water: u64,
        /// Topology epoch after the commit.
        epoch: u64,
    },
    /// A batch resumed from the journal: its source-leg documents were
    /// already bought, so only the destination leg re-runs. Free.
    MigrationResume {
        /// 0-based index of the move within the plan.
        mv: u64,
        /// Source shard.
        src: usize,
        /// Destination shard.
        dst: usize,
        /// In-flight documents whose destination leg is being retried.
        docs: u64,
        /// Topology epoch at resume time.
        epoch: u64,
    },
    /// An unresumable move aborted: its committed documents reverted to the
    /// source shard's routing. Free — sunk transfer charges stay booked.
    MigrationAbort {
        /// 0-based index of the move within the plan.
        mv: u64,
        /// Source shard.
        src: usize,
        /// Destination shard.
        dst: usize,
        /// Documents whose routing was reverted.
        reverted: u64,
        /// Topology epoch after the revert (monotonically increasing even
        /// though the routing table matches the pre-move state).
        epoch: u64,
    },
    /// A gather detected that the topology epoch advanced after its routing
    /// decision and re-scattered only the affected shards. Free.
    RoutingStale {
        /// Epoch the routing decision was made at.
        from_epoch: u64,
        /// Epoch observed after the gather legs completed.
        to_epoch: u64,
        /// Shards whose visibility changed in between (re-scattered).
        shards: Vec<usize>,
    },
    /// Docids a gather path routed to the client (search results consumed
    /// or long forms fetched). Free — the underlying calls carry the
    /// charges; this is pure routing metadata for the traffic monitor, so
    /// rebalance advice can be derived from *observed* traffic instead of
    /// seeded windows.
    DocTraffic {
        /// Shard the docids were served from, when attributable.
        shard: Option<usize>,
        /// The global docids, in routing order.
        docs: Vec<u64>,
    },
    /// The load-skew detector crossed its hysteresis band for one shard.
    /// Free, edge-triggered: emitted once when the shard's windowed
    /// invoice share enters the hot band and once when it clears.
    SkewAlert {
        /// 0-based index of the window that closed the edge.
        window: u64,
        /// The shard whose invoice share moved.
        shard: usize,
        /// The shard's invoice share in that window, parts-per-million.
        share_ppm: u64,
        /// `true` on enter (share ≥ threshold), `false` on clear.
        hot: bool,
    },
    /// The SLO burn-rate monitor crossed its dual-window alert condition.
    /// Free, edge-triggered like [`SkewAlert`](Self::SkewAlert).
    SloAlert {
        /// 0-based index of the window that closed the edge.
        window: u64,
        /// Fast-window burn rate, parts-per-million of budget.
        fast_ppm: u64,
        /// Slow-window burn rate, parts-per-million of budget.
        slow_ppm: u64,
        /// `true` when both windows burn above budget, `false` on clear.
        firing: bool,
    },
    /// The drift watchdog re-fitted the cost constants over its trailing
    /// window and one component drifted past tolerance. Free,
    /// edge-triggered per component.
    DriftAlert {
        /// 0-based index of the window that closed the check.
        window: u64,
        /// Which constant drifted (`c_i`, `c_p`, `c_s`, `c_l`).
        component: &'static str,
        /// The configured value the planner would otherwise use.
        configured: f64,
        /// The trailing-window least-squares fit.
        fitted: f64,
        /// `true` when drift exceeds tolerance, `false` on clear.
        drifted: bool,
    },
    /// The skew detector derived an advisory migration from observed
    /// traffic: move the hot shard's hottest docid range to the coldest
    /// shard. Free — advice only; executing it is the caller's decision.
    RebalanceAdvice {
        /// 0-based index of the window the advice was derived from.
        window: u64,
        /// The hot source shard.
        src: usize,
        /// The advised destination shard (lowest invoice share).
        dst: usize,
        /// Advised half-open docid range start.
        lo: u64,
        /// Advised half-open docid range end.
        hi: u64,
        /// Observed traffic hits inside the advised range.
        hits: u64,
    },
    /// A serving session admitted a request for execution: its estimated
    /// plan cost fit the tenant's remaining budget. Free.
    Admit {
        /// 0-based tenant index within the session.
        tenant: u64,
        /// 0-based arrival index of the request in the session stream.
        arrival: u64,
        /// The optimizer's estimated plan cost, simulated seconds.
        est_cost: f64,
    },
    /// A serving session shed a queued request under overload — a typed
    /// refusal, never a silent drop. Free.
    Shed {
        /// 0-based tenant index within the session.
        tenant: u64,
        /// 0-based arrival index of the shed request.
        arrival: u64,
        /// Requests still queued after the shed.
        queued: u64,
    },
    /// A tenant's cost budget ran out — either at admission (the estimate
    /// exceeded the remainder) or mid-flight (actuals overran the
    /// estimate and the per-query guard aborted). Free; any partial
    /// charges were already booked through the ordinary ledger. Budget
    /// figures are carried in integer milli-seconds of simulated time so
    /// the event stays `Eq`-comparable.
    BudgetExhausted {
        /// 0-based tenant index within the session.
        tenant: u64,
        /// 0-based arrival index of the refused/aborted request.
        arrival: u64,
        /// Simulated milliseconds charged (admission: the estimate).
        spent_ms: u64,
        /// Simulated milliseconds that remained in the tenant's budget.
        remaining_ms: u64,
    },
    /// A session-scoped cache answered without touching the text server:
    /// `scope` is `"probe"` (probe-outcome cache) or `"plan"` (plan
    /// cache). Free — that is the point.
    CacheHit {
        /// Which session cache hit (`probe` or `plan`).
        scope: &'static str,
        /// Topology/stats epoch the cached entry was proved at.
        epoch: u64,
    },
    /// The optimizer estimated one candidate method. Free.
    Planner(PlannerChoice),
    /// One per-query plan-quality sample, emitted by the executor when
    /// EXPLAIN ANALYZE attribution is enabled. Free — pure arithmetic over
    /// charges the ledger already booked; emitting it never charges.
    EstimateSample {
        /// Q-error of the estimated total plan cost vs the actual charge.
        cost_q: f64,
        /// Q-error of the estimated result cardinality vs actual rows —
        /// the selectivity/statistics side of a misestimate.
        selectivity_q: f64,
        /// Q-error of the actual charge vs the actual counts re-priced at
        /// the configured constants — the `c_i`/`c_p`/`c_s`/`c_l` side.
        constants_q: f64,
        /// Fraction of the actual cost that was regret against the best
        /// counterfactual candidate, when known (`0.0` otherwise).
        regret_share: f64,
    },
    /// The misestimation detector crossed its threshold: trailing-window
    /// p90 Q-error or regret share is out of band. Free, edge-triggered
    /// like [`SkewAlert`](Self::SkewAlert); `component` names the worst
    /// offender (`selectivity` → stats are stale, re-export stats;
    /// `constants` → the cost constants drifted, run calibrate).
    EstimateDrift {
        /// 0-based index of the window that closed the check.
        window: u64,
        /// Worst component: `selectivity` or `constants`.
        component: &'static str,
        /// Trailing-window p90 Q-error of the worst component.
        p90_q: f64,
        /// Trailing-window mean regret share.
        regret_share: f64,
        /// `true` on enter (out of band), `false` on clear.
        firing: bool,
    },
}

impl EventKind {
    /// The charge this event booked, if it is a chargeable kind.
    pub fn charge(&self) -> Option<&Charge> {
        match self {
            EventKind::Call { charge, .. }
            | EventKind::Rebate { charge, .. }
            | EventKind::Backoff { charge, .. } => Some(charge),
            _ => None,
        }
    }
}

/// A recorded event: sequence number, simulated-clock stamp, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the trace (0-based, dense).
    pub seq: u64,
    /// Simulated clock at emission: cumulative simulated seconds of every
    /// charge observed up to and including this event.
    pub clock: f64,
    /// The payload.
    pub kind: EventKind,
}

/// Minimal JSON string escaping (labels and fault messages are ASCII, but
/// quotes and backslashes must not break the line format).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn push_charge(out: &mut String, c: &Charge) {
    let _ = write!(
        out,
        "\"charge\":{{\"inv\":{},\"rej\":{},\"post\":{},\"short\":{},\"long\":{},\
         \"t_inv\":{},\"t_proc\":{},\"t_xmit\":{},\"faults\":{},\"retries\":{},\"t_backoff\":{}}}",
        c.invocations,
        c.rejected,
        c.postings,
        c.docs_short,
        c.docs_long,
        c.time_invocation,
        c.time_processing,
        c.time_transmission,
        c.faults,
        c.retries,
        c.time_backoff
    );
}

fn push_shard(out: &mut String, shard: Option<usize>) {
    match shard {
        Some(i) => {
            let _ = write!(out, "\"shard\":{i},");
        }
        None => out.push_str("\"shard\":null,"),
    }
}

impl Event {
    /// One JSONL line, fixed field order, no trailing newline. Floats use
    /// Rust's shortest-roundtrip `Display`, which is deterministic, so two
    /// identical runs serialize byte-identically.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(out, "{{\"seq\":{},\"clock\":{},", self.seq, self.clock);
        match &self.kind {
            EventKind::SpanBegin { id, parent, label } => {
                let _ = write!(out, "\"type\":\"span_begin\",\"id\":{id},");
                match parent {
                    Some(p) => {
                        let _ = write!(out, "\"parent\":{p},");
                    }
                    None => out.push_str("\"parent\":null,"),
                }
                let _ = write!(out, "\"label\":\"{}\"", esc(label));
            }
            EventKind::SpanEnd { id, label } => {
                let _ = write!(
                    out,
                    "\"type\":\"span_end\",\"id\":{id},\"label\":\"{}\"",
                    esc(label)
                );
            }
            EventKind::Call {
                op,
                shard,
                terms,
                err,
                charge,
            } => {
                let _ = write!(out, "\"type\":\"call\",\"op\":\"{op}\",");
                push_shard(&mut out, *shard);
                let _ = write!(out, "\"terms\":{terms},");
                match err {
                    Some(e) => {
                        let _ = write!(out, "\"err\":\"{}\",", esc(e));
                    }
                    None => out.push_str("\"err\":null,"),
                }
                push_charge(&mut out, charge);
            }
            EventKind::Rebate { shard, charge } => {
                out.push_str("\"type\":\"rebate\",");
                push_shard(&mut out, *shard);
                push_charge(&mut out, charge);
            }
            EventKind::Backoff {
                shard,
                seconds,
                charge,
            } => {
                out.push_str("\"type\":\"backoff\",");
                push_shard(&mut out, *shard);
                let _ = write!(out, "\"seconds\":{seconds},");
                push_charge(&mut out, charge);
            }
            EventKind::Retry { shard, attempt } => {
                out.push_str("\"type\":\"retry\",");
                push_shard(&mut out, *shard);
                let _ = write!(out, "\"attempt\":{attempt}");
            }
            EventKind::Failover { shard, replica } => {
                let _ = write!(
                    out,
                    "\"type\":\"failover\",\"shard\":{shard},\"replica\":{replica}"
                );
            }
            EventKind::CircuitOpen { shard, rate } => {
                let _ = write!(
                    out,
                    "\"type\":\"circuit_open\",\"shard\":{shard},\"rate\":{rate}"
                );
            }
            EventKind::CircuitClose { shard, rate } => {
                let _ = write!(
                    out,
                    "\"type\":\"circuit_close\",\"shard\":{shard},\"rate\":{rate}"
                );
            }
            EventKind::Hedge { shard, replica } => {
                let _ = write!(
                    out,
                    "\"type\":\"hedge\",\"shard\":{shard},\"replica\":{replica}"
                );
            }
            EventKind::Cancel { shard, replica } => {
                let _ = write!(
                    out,
                    "\"type\":\"cancel\",\"shard\":{shard},\"replica\":{replica}"
                );
            }
            EventKind::DeadlineMiss { shard } => {
                out.push_str("\"type\":\"deadline_miss\",");
                match shard {
                    Some(i) => {
                        let _ = write!(out, "\"shard\":{i}");
                    }
                    None => out.push_str("\"shard\":null"),
                }
            }
            EventKind::MigrationBegin { moves, docs, epoch } => {
                let _ = write!(
                    out,
                    "\"type\":\"migration_begin\",\"moves\":{moves},\"docs\":{docs},\"epoch\":{epoch}"
                );
            }
            EventKind::MigrationBatch {
                mv,
                src,
                dst,
                docs,
                postings,
                high_water,
                epoch,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"migration_batch\",\"mv\":{mv},\"src\":{src},\"dst\":{dst},\
                     \"docs\":{docs},\"postings\":{postings},\"high_water\":{high_water},\
                     \"epoch\":{epoch}"
                );
            }
            EventKind::MigrationResume {
                mv,
                src,
                dst,
                docs,
                epoch,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"migration_resume\",\"mv\":{mv},\"src\":{src},\"dst\":{dst},\
                     \"docs\":{docs},\"epoch\":{epoch}"
                );
            }
            EventKind::MigrationAbort {
                mv,
                src,
                dst,
                reverted,
                epoch,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"migration_abort\",\"mv\":{mv},\"src\":{src},\"dst\":{dst},\
                     \"reverted\":{reverted},\"epoch\":{epoch}"
                );
            }
            EventKind::RoutingStale {
                from_epoch,
                to_epoch,
                shards,
            } => {
                let list: Vec<String> = shards.iter().map(|s| s.to_string()).collect();
                let _ = write!(
                    out,
                    "\"type\":\"routing_stale\",\"from_epoch\":{from_epoch},\
                     \"to_epoch\":{to_epoch},\"shards\":[{}]",
                    list.join(",")
                );
            }
            EventKind::DocTraffic { shard, docs } => {
                out.push_str("\"type\":\"doc_traffic\",");
                push_shard(&mut out, *shard);
                let list: Vec<String> = docs.iter().map(|d| d.to_string()).collect();
                let _ = write!(out, "\"docs\":[{}]", list.join(","));
            }
            EventKind::SkewAlert {
                window,
                shard,
                share_ppm,
                hot,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"skew_alert\",\"window\":{window},\"shard\":{shard},\
                     \"share_ppm\":{share_ppm},\"hot\":{hot}"
                );
            }
            EventKind::SloAlert {
                window,
                fast_ppm,
                slow_ppm,
                firing,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"slo_alert\",\"window\":{window},\"fast_ppm\":{fast_ppm},\
                     \"slow_ppm\":{slow_ppm},\"firing\":{firing}"
                );
            }
            EventKind::DriftAlert {
                window,
                component,
                configured,
                fitted,
                drifted,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"drift_alert\",\"window\":{window},\"component\":\"{component}\",\
                     \"configured\":{configured},\"fitted\":{fitted},\"drifted\":{drifted}"
                );
            }
            EventKind::RebalanceAdvice {
                window,
                src,
                dst,
                lo,
                hi,
                hits,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"rebalance_advice\",\"window\":{window},\"src\":{src},\
                     \"dst\":{dst},\"lo\":{lo},\"hi\":{hi},\"hits\":{hits}"
                );
            }
            EventKind::Admit {
                tenant,
                arrival,
                est_cost,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"admit\",\"tenant\":{tenant},\"arrival\":{arrival},\
                     \"est_cost\":{est_cost}"
                );
            }
            EventKind::Shed {
                tenant,
                arrival,
                queued,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"shed\",\"tenant\":{tenant},\"arrival\":{arrival},\
                     \"queued\":{queued}"
                );
            }
            EventKind::BudgetExhausted {
                tenant,
                arrival,
                spent_ms,
                remaining_ms,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"budget_exhausted\",\"tenant\":{tenant},\"arrival\":{arrival},\
                     \"spent_ms\":{spent_ms},\"remaining_ms\":{remaining_ms}"
                );
            }
            EventKind::CacheHit { scope, epoch } => {
                let _ = write!(
                    out,
                    "\"type\":\"cache_hit\",\"scope\":\"{scope}\",\"epoch\":{epoch}"
                );
            }
            EventKind::Planner(p) => {
                let cols: Vec<String> = p.probe_cols.iter().map(|c| c.to_string()).collect();
                let _ = write!(
                    out,
                    "\"type\":\"planner\",\"label\":\"{}\",\"chosen\":{},\"probe_cols\":[{}],\
                     \"est\":{{\"invocation\":{},\"processing\":{},\"transmission\":{},\
                     \"rtp\":{},\"searches\":{},\"rows\":{},\"postings\":{}}},\
                     \"effective_c_i\":{}",
                    esc(&p.label),
                    p.chosen,
                    cols.join(","),
                    p.invocation,
                    p.processing,
                    p.transmission,
                    p.rtp,
                    p.searches,
                    p.est_rows,
                    p.est_postings,
                    p.effective_c_i
                );
            }
            EventKind::EstimateSample {
                cost_q,
                selectivity_q,
                constants_q,
                regret_share,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"estimate_sample\",\"cost_q\":{cost_q},\
                     \"selectivity_q\":{selectivity_q},\"constants_q\":{constants_q},\
                     \"regret_share\":{regret_share}"
                );
            }
            EventKind::EstimateDrift {
                window,
                component,
                p90_q,
                regret_share,
                firing,
            } => {
                let _ = write!(
                    out,
                    "\"type\":\"estimate_drift\",\"window\":{window},\
                     \"component\":\"{component}\",\"p90_q\":{p90_q},\
                     \"regret_share\":{regret_share},\"firing\":{firing}"
                );
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_total_and_accumulate() {
        let mut a = Charge {
            invocations: 1,
            time_invocation: 3.0,
            ..Charge::default()
        };
        let b = Charge {
            docs_short: 2,
            time_transmission: 0.03,
            ..Charge::default()
        };
        a.accumulate(&b);
        assert_eq!(a.invocations, 1);
        assert_eq!(a.docs_short, 2);
        assert!((a.total() - 3.03).abs() < 1e-12);
        assert!(!a.is_zero());
        assert!(Charge::default().is_zero());
    }

    #[test]
    fn jsonl_escapes_and_is_stable() {
        let ev = Event {
            seq: 7,
            clock: 3.015,
            kind: EventKind::Call {
                op: "search",
                shard: Some(2),
                terms: 4,
                err: Some("cap \"M\" hit".into()),
                charge: Charge::default(),
            },
        };
        let line = ev.to_jsonl();
        assert!(line.starts_with("{\"seq\":7,\"clock\":3.015,"));
        assert!(line.contains("\\\"M\\\""));
        assert_eq!(line, ev.to_jsonl());
    }
}
