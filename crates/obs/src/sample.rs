//! Deterministic head sampling: a [`SampledSink`] wrapper that keeps a
//! seeded fraction of spans (and the cold events inside them) while
//! *always* keeping the chaos signal — faulted calls, circuit-breaker
//! transitions, and failover *transitions* — so a sampled trace of an
//! unhealthy run never hides why it was unhealthy.
//!
//! The keep decision for a span is a pure function of the policy seed and
//! the span's begin-event sequence number (`splitmix64(seed ^ span_seq)`),
//! so two identical runs sample identically and the sampled golden trace
//! is byte-identical across runs. Decisions are independent per span —
//! a kept span under a dropped ancestor is still kept (the replay
//! attaches it to the nearest kept enclosing span).
//!
//! The always-keep rule covers fault *signals*, not fault *volume*. A
//! replicated server with a dead primary fails over on every single call
//! to that shard, forever — the first hop tells the story, the thousandth
//! is bookkeeping. Three novelty rules encode that:
//!
//! - a `Failover` is hot only when it changes state: a different replica
//!   than the shard's previous hop, or the first hop after a
//!   circuit-breaker transition opened a new outage episode;
//! - while a shard's breaker is *open*, its faulted calls are half-open
//!   probes (or bypassed-primary legs) against a known-bad primary — the
//!   first after each breaker transition is kept, repeats are sampled;
//!   faulted calls on closed-breaker shards are always kept;
//! - the retry/backoff machinery that follows a fault, whose schedule is
//!   fully determined by the kept faulted call and the policy in force,
//!   is sampled at the span rate like any other in-span event.
//!
//! Sampling is *observational only*: the wrapped recorder still stamps
//! every event (sequence numbers in a sampled trace are gapped but
//! monotonic) and the ledgers never see the sampler. Charges attached to
//! dropped events are accumulated in [`SampledSink::dropped_charge`], so
//! the trace↔ledger audit extends to sampled traces as
//! `kept + dropped == ledger`, field for field.
//!
//! Because the keep decision never looks at an event's charge, the kept
//! `Call`/`Rebate` events are an unbiased sample of the charge population
//! — fitting cost constants on a sampled trace estimates the same
//! constants as the full trace (see `calibrate`). The always-keep rule
//! intentionally oversamples faulted calls, so *aggregate* fault rates
//! must be read from the full trace or the ledger, not the sample.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::event::{Charge, Event, EventKind};
use crate::sink::Sink;

/// SplitMix64's output mixer: a well-distributed 64-bit hash used for all
/// sampling decisions. Pure and seedable — no global RNG state.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded per-span-kind sampling rates. A span labelled `L` beginning at
/// trace sequence `s` is kept iff `splitmix64(seed ^ s) % denom(L) == 0`,
/// where `denom(L)` comes from the first matching label-prefix rule
/// (falling back to the default). `denom == 1` keeps everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePolicy {
    seed: u64,
    default_denom: u64,
    rules: Vec<(String, u64)>,
    tail: bool,
}

impl SamplePolicy {
    /// Keeps every span (the identity policy).
    pub fn keep_all(seed: u64) -> Self {
        Self::one_in(seed, 1)
    }

    /// Keeps roughly one span in `denom`.
    pub fn one_in(seed: u64, denom: u64) -> Self {
        Self {
            seed,
            default_denom: denom.max(1),
            rules: Vec::new(),
            tail: false,
        }
    }

    /// Enables tail-based retention: the events of a head-dropped span are
    /// buffered instead of discarded, and the moment a descendant event is
    /// kept anyway — a faulted call, a cancelled leg, a deadline miss, or
    /// any other always-keep signal — the whole enclosing span chain is
    /// retroactively flushed to the inner sink, in original order.
    ///
    /// Retention is *span-scoped*: the signal retains the whole span's
    /// events, not just those recorded before it. A clean child span that
    /// closed *before* the signal folds its buffer into the enclosing
    /// undecided span and is flushed with it; a child span opened *after*
    /// the signal inherits the promotion. Only a span whose entire scope
    /// resolves without a signal is dropped, its buffered charges
    /// accounted in [`SampledSink::dropped_charge`] as usual.
    pub fn with_tail_keep(mut self) -> Self {
        self.tail = true;
        self
    }

    /// Whether tail-based retention is enabled.
    pub fn tail_enabled(&self) -> bool {
        self.tail
    }

    /// Adds a per-span-kind rule: spans whose label starts with
    /// `label_prefix` are sampled at one-in-`denom` instead of the
    /// default. Rules are consulted in insertion order, first match wins.
    pub fn with_rule(mut self, label_prefix: &str, denom: u64) -> Self {
        self.rules.push((label_prefix.to_string(), denom.max(1)));
        self
    }

    /// The sampling denominator that applies to a span labelled `label`.
    pub fn denom_for(&self, label: &str) -> u64 {
        self.rules
            .iter()
            .find(|(prefix, _)| label.starts_with(prefix.as_str()))
            .map(|&(_, d)| d)
            .unwrap_or(self.default_denom)
    }

    /// The head-sampling decision for a span: deterministic in
    /// `(seed, label kind, begin-event sequence number)`.
    pub fn keeps(&self, label: &str, span_seq: u64) -> bool {
        let denom = self.denom_for(label);
        denom <= 1 || splitmix64(self.seed ^ span_seq).is_multiple_of(denom)
    }
}

/// Whether an event belongs to the always-keep chaos classes: faulted or
/// rejected calls, failovers, and circuit-breaker transitions. For
/// `Failover` — and for faulted calls on a shard whose breaker is open —
/// the sampler additionally requires *novelty*: steady-state repeats
/// inside the same outage episode are sampled like cold events (see the
/// module docs). Retry and backoff events are not hot: their schedule is
/// fully determined by the kept faulted call and the retry policy in
/// force, and their charges stay accounted via
/// [`SampledSink::dropped_charge`].
pub fn is_hot(kind: &EventKind) -> bool {
    match kind {
        EventKind::Call { err, .. } => err.is_some(),
        EventKind::Failover { .. }
        | EventKind::CircuitOpen { .. }
        | EventKind::CircuitClose { .. }
        | EventKind::Cancel { .. }
        | EventKind::DeadlineMiss { .. }
        | EventKind::MigrationBegin { .. }
        | EventKind::MigrationBatch { .. }
        | EventKind::MigrationResume { .. }
        | EventKind::MigrationAbort { .. }
        | EventKind::RoutingStale { .. }
        | EventKind::SkewAlert { .. }
        | EventKind::SloAlert { .. }
        | EventKind::DriftAlert { .. }
        | EventKind::RebalanceAdvice { .. } => true,
        _ => false,
    }
}

struct Frame {
    id: u64,
    keep: bool,
    /// Tail mode only: the span was retroactively promoted by a descendant
    /// signal (as opposed to head-kept). Spans opened under a promoted
    /// frame inherit the promotion, so *the whole span's events* — clean
    /// child spans opened after the signal included — are retained.
    promoted: bool,
    /// Tail mode only: events of a head-dropped span, held back until the
    /// span is either promoted (a descendant signal flushes them) or
    /// closed. A closed clean span under a still-undecided ancestor folds
    /// its buffer into the ancestor's, so a *later* signal anywhere in the
    /// ancestor's scope still retains the whole subtree; only when the
    /// enclosing scope resolves clean do the buffered charges resolve as
    /// dropped.
    buf: Vec<Event>,
}

#[derive(Default)]
struct State {
    stack: Vec<Frame>,
    /// Spans popped by an out-of-order ancestor close whose own `SpanEnd`
    /// has not arrived yet: id → keep.
    force_closed: BTreeMap<u64, bool>,
    /// Per-shard replica of the last observed failover: a failover is
    /// novel (always kept) iff it differs, or iff a circuit transition on
    /// that shard opened a new outage episode since.
    last_failover: BTreeMap<usize, usize>,
    /// Shards whose circuit breaker is currently open, mapped to whether
    /// a faulted call has already been kept during this open episode.
    /// While open, faulted calls on the shard are half-open-probe (or
    /// bypassed-primary) bookkeeping against a *known-bad* primary: the
    /// first is kept, repeats are sampled like cold events.
    open_breakers: BTreeMap<usize, bool>,
    dropped: Charge,
    seen: u64,
    kept: u64,
}

/// A [`Sink`] adapter that forwards a deterministic sample of the event
/// stream to `inner` and accounts for everything it drops. See the module
/// docs for the retention rules.
pub struct SampledSink {
    inner: Rc<dyn Sink>,
    policy: SamplePolicy,
    state: RefCell<State>,
}

impl SampledSink {
    /// Samples the stream into `inner` under `policy`.
    pub fn new(inner: Rc<dyn Sink>, policy: SamplePolicy) -> Self {
        Self {
            inner,
            policy,
            state: RefCell::new(State::default()),
        }
    }

    /// Field-wise sum of the charges attached to every dropped event. The
    /// sampled-audit invariant is `charge_sum(kept) + dropped_charge ==
    /// ledger`, exactly.
    pub fn dropped_charge(&self) -> Charge {
        self.state.borrow().dropped
    }

    /// Events observed (kept or not).
    pub fn events_seen(&self) -> u64 {
        self.state.borrow().seen
    }

    /// Events forwarded to the inner sink.
    pub fn events_kept(&self) -> u64 {
        self.state.borrow().kept
    }

    /// Forwards one event. In tail mode, first retroactively promotes
    /// every still-unkept enclosing span: their buffered events (span
    /// begins and cold interior events, in original order) flush to the
    /// inner sink *before* this event, so the kept stream stays a strictly
    /// ordered subsequence of the full stream.
    fn forward(&self, st: &mut State, ev: &Event) {
        if self.policy.tail {
            for i in 0..st.stack.len() {
                if !st.stack[i].keep {
                    st.stack[i].keep = true;
                    st.stack[i].promoted = true;
                    let buf = std::mem::take(&mut st.stack[i].buf);
                    for held in &buf {
                        st.kept += 1;
                        self.inner.record(held);
                    }
                }
            }
        }
        st.kept += 1;
        self.inner.record(ev);
    }

    fn drop_event(&self, st: &mut State, ev: &Event) {
        if let Some(c) = ev.kind.charge() {
            st.dropped.accumulate(c);
        }
    }

    /// A cold event the head decision rejects: dropped outright, or — in
    /// tail mode, inside a still-unkept span — held back in case a later
    /// descendant signal promotes the span.
    fn drop_or_buffer(&self, st: &mut State, ev: &Event) {
        if self.policy.tail {
            if let Some(f) = st.stack.last_mut() {
                if !f.keep {
                    f.buf.push(ev.clone());
                    return;
                }
            }
        }
        self.drop_event(st, ev);
    }

    /// Resolves a head-dropped frame's buffer at close. If the enclosing
    /// frame is itself still head-dropped, the buffer folds into it: a
    /// *later* signal anywhere in the enclosing span retroactively retains
    /// the whole closed subtree (span-scoped retention). Only when no
    /// undecided enclosing scope remains do the buffered charges resolve
    /// as dropped charges.
    fn fold_or_resolve(&self, st: &mut State, buf: Vec<Event>) {
        if let Some(f) = st.stack.last_mut() {
            if !f.keep {
                f.buf.extend(buf);
                return;
            }
        }
        for held in &buf {
            if let Some(c) = held.kind.charge() {
                st.dropped.accumulate(c);
            }
        }
    }

    /// The span-sampling decision that applies to a cold event: that of
    /// the innermost open span (root-level events are always kept).
    fn cold_keep(&self, st: &State) -> bool {
        st.stack.last().map(|f| f.keep).unwrap_or(true)
    }
}

impl Sink for SampledSink {
    fn record(&self, ev: &Event) {
        let mut st = self.state.borrow_mut();
        st.seen += 1;
        match &ev.kind {
            EventKind::SpanBegin { id, label, .. } => {
                // A span opened while the innermost enclosing span is
                // *promoted* (tail-retained by a signal) belongs to the
                // retained scope: it inherits the promotion so the whole
                // span's events — clean children included — are kept.
                let inherited = self.policy.tail
                    && st.stack.last().map(|f| f.promoted).unwrap_or(false);
                let keep = inherited || self.policy.keeps(label, ev.seq);
                let mut buf = Vec::new();
                if !keep && self.policy.tail {
                    buf.push(ev.clone());
                }
                st.stack.push(Frame {
                    id: *id,
                    keep,
                    promoted: inherited,
                    buf,
                });
                if keep {
                    self.forward(&mut st, ev);
                }
            }
            EventKind::SpanEnd { id, .. } => {
                // Mirror the recorder's out-of-order-drop semantics:
                // closing a span force-pops any children still open; each
                // child's own SpanEnd arrives later and must resolve to
                // the keep decision made at its begin.
                let keep = if let Some(pos) = st.stack.iter().rposition(|f| f.id == *id) {
                    for popped in st.stack.split_off(pos + 1) {
                        st.force_closed.insert(popped.id, popped.keep);
                        self.fold_or_resolve(&mut st, popped.buf);
                    }
                    match st.stack.pop() {
                        Some(f) => {
                            if !f.keep && self.policy.tail {
                                // The span closed without a signal: its
                                // whole buffered subtree (this end
                                // included) folds into the enclosing
                                // undecided scope, or resolves as
                                // dropped.
                                let mut buf = f.buf;
                                buf.push(ev.clone());
                                self.fold_or_resolve(&mut st, buf);
                            }
                            f.keep
                        }
                        None => true,
                    }
                } else {
                    // Unknown spans (opened before the sampler attached)
                    // are kept: never drop an end we cannot account for.
                    st.force_closed.remove(id).unwrap_or(true)
                };
                if keep {
                    self.forward(&mut st, ev);
                }
                // A dropped SpanEnd carries no charge: nothing to account.
            }
            EventKind::Failover { shard, replica } => {
                let novel = st.last_failover.insert(*shard, *replica) != Some(*replica);
                if novel || self.cold_keep(&st) {
                    self.forward(&mut st, ev);
                } else {
                    self.drop_or_buffer(&mut st, ev);
                }
            }
            EventKind::CircuitOpen { shard, .. } => {
                // A breaker transition starts a new outage episode: the
                // next failover and the next faulted probe on this shard
                // are novel again.
                st.last_failover.remove(shard);
                st.open_breakers.insert(*shard, false);
                self.forward(&mut st, ev);
            }
            EventKind::CircuitClose { shard, .. } => {
                st.last_failover.remove(shard);
                st.open_breakers.remove(shard);
                self.forward(&mut st, ev);
            }
            EventKind::Call {
                shard: Some(s),
                err: Some(_),
                ..
            } if st.open_breakers.contains_key(s) => {
                // Probe of a shard already known to be bad: first kept,
                // repeats sampled (the open breaker is the standing fact).
                let novel = !std::mem::replace(st.open_breakers.get_mut(s).unwrap(), true);
                if novel || self.cold_keep(&st) {
                    self.forward(&mut st, ev);
                } else {
                    self.drop_or_buffer(&mut st, ev);
                }
            }
            kind if is_hot(kind) => self.forward(&mut st, ev),
            _ => {
                if self.cold_keep(&st) {
                    self.forward(&mut st, ev);
                } else {
                    self.drop_or_buffer(&mut st, ev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::RingSink;

    fn call(err: Option<&str>, secs: f64) -> EventKind {
        EventKind::Call {
            op: "search",
            shard: None,
            terms: 1,
            err: err.map(str::to_string),
            charge: Charge {
                invocations: 1,
                time_invocation: secs,
                ..Charge::default()
            },
        }
    }

    #[test]
    fn splitmix64_is_a_fixed_function() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Reference value pinned so the sampling decisions (and therefore
        // the golden sampled traces) can never drift silently.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn policy_rules_override_default() {
        let p = SamplePolicy::one_in(7, 16).with_rule("gather/shard", 4).with_rule("gather", 2);
        assert_eq!(p.denom_for("gather/shard1"), 4);
        assert_eq!(p.denom_for("gather"), 2);
        assert_eq!(p.denom_for("TS"), 16);
        assert!(SamplePolicy::keep_all(7).keeps("anything", 3));
    }

    #[test]
    fn hot_events_survive_any_rate_and_dropped_charge_balances() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            // denom too large for any span to be kept by chance
            SamplePolicy::one_in(99, u64::MAX),
        ));
        let rec = Recorder::new(sampled.clone());
        {
            let _g = rec.span("gather");
            rec.emit(call(None, 3.0)); // cold: dropped
            rec.emit(call(Some("injected fault"), 3.0)); // hot: kept
            rec.emit(EventKind::Failover { shard: 0, replica: 1 });
        }
        let kept = ring.events();
        assert!(kept.iter().all(|e| is_hot(&e.kind)), "only hot events kept");
        assert_eq!(kept.len(), 2);
        let dropped = sampled.dropped_charge();
        assert_eq!(dropped.invocations, 1, "the cold call's charge is accounted");
        assert!((dropped.time_invocation - 3.0).abs() < 1e-12);
        assert_eq!(sampled.events_seen(), 5);
        assert_eq!(sampled.events_kept(), 2);
    }

    #[test]
    fn failover_repeats_are_cold_until_the_episode_changes() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            SamplePolicy::one_in(99, u64::MAX),
        ));
        let rec = Recorder::new(sampled);
        {
            let _g = rec.span("gather");
            rec.emit(EventKind::Failover { shard: 2, replica: 1 }); // novel: first hop
            rec.emit(EventKind::Failover { shard: 2, replica: 1 }); // repeat: sampled out
            rec.emit(EventKind::Failover { shard: 0, replica: 1 }); // novel: other shard
            rec.emit(EventKind::Failover { shard: 2, replica: 2 }); // novel: replica change
            rec.emit(EventKind::CircuitOpen { shard: 2, rate: 512 }); // new episode
            rec.emit(EventKind::Failover { shard: 2, replica: 2 }); // novel again
            rec.emit(EventKind::Failover { shard: 2, replica: 2 }); // repeat
        }
        let hops: Vec<(usize, usize)> = ring
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Failover { shard, replica } => Some((shard, replica)),
                _ => None,
            })
            .collect();
        assert_eq!(hops, vec![(2, 1), (0, 1), (2, 2), (2, 2)]);
    }

    #[test]
    fn probe_faults_on_an_open_breaker_are_cold_after_the_first() {
        let probe = |shard: usize| EventKind::Call {
            op: "search",
            shard: Some(shard),
            terms: 1,
            err: Some("injected fault".to_string()),
            charge: Charge {
                rejected: 1,
                ..Charge::default()
            },
        };
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            SamplePolicy::one_in(99, u64::MAX),
        ));
        let rec = Recorder::new(sampled.clone());
        {
            let _g = rec.span("gather");
            rec.emit(probe(2)); // breaker closed: genuine fault, kept
            rec.emit(probe(2)); // still closed: kept
            rec.emit(EventKind::CircuitOpen { shard: 2, rate: 512 });
            rec.emit(probe(2)); // first probe of the episode: kept
            rec.emit(probe(2)); // repeat probe: sampled out
            rec.emit(probe(0)); // other shard's breaker closed: kept
            rec.emit(EventKind::CircuitClose { shard: 2, rate: 0 });
            rec.emit(probe(2)); // closed again: kept
        }
        let kept_faults = ring
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Call { err: Some(_), .. }))
            .count();
        assert_eq!(kept_faults, 5);
        // the dropped probe's charge is still accounted
        assert_eq!(sampled.dropped_charge().rejected, 1);
    }

    #[test]
    fn kept_spans_keep_their_cold_events_and_both_ends() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(ring.clone(), SamplePolicy::keep_all(1)));
        let rec = Recorder::new(sampled);
        {
            let _g = rec.span("gather");
            rec.emit(call(None, 3.0));
        }
        let kept = ring.events();
        assert_eq!(kept.len(), 3);
        assert!(matches!(kept[0].kind, EventKind::SpanBegin { .. }));
        assert!(matches!(kept[2].kind, EventKind::SpanEnd { .. }));
    }

    #[test]
    fn span_end_matches_its_begin_decision_even_out_of_order() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            SamplePolicy::one_in(99, u64::MAX),
        ));
        let rec = Recorder::new(sampled);
        let outer = rec.span("outer");
        let inner = rec.span("inner");
        drop(outer); // force-pops inner off the recorder stack
        drop(inner); // its SpanEnd still arrives, and must still be dropped
        assert!(ring.events().is_empty(), "no span was sampled in");
    }

    #[test]
    fn tail_keep_promotes_the_whole_span_on_a_descendant_signal() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            SamplePolicy::one_in(99, u64::MAX).with_tail_keep(),
        ));
        let rec = Recorder::new(sampled.clone());
        {
            let _g = rec.span("gather");
            rec.emit(call(None, 3.0)); // cold: buffered
            rec.emit(call(Some("injected fault"), 1.0)); // signal: promotes
            rec.emit(call(None, 2.0)); // span now kept
        }
        let kept = ring.events();
        // Span begin, the buffered cold call, the fault, the later cold
        // call, and the span end — all kept, in original order.
        assert_eq!(kept.len(), 5);
        assert!(matches!(kept[0].kind, EventKind::SpanBegin { .. }));
        assert!(matches!(kept[4].kind, EventKind::SpanEnd { .. }));
        let seqs: Vec<u64> = kept.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "ordered: {seqs:?}");
        assert!(sampled.dropped_charge().is_zero(), "nothing was dropped");
    }

    #[test]
    fn tail_keep_promotes_on_cancel_and_deadline_miss() {
        for signal in [
            EventKind::Cancel { shard: 1, replica: 0 },
            EventKind::DeadlineMiss { shard: Some(1) },
        ] {
            let ring = Rc::new(RingSink::unbounded());
            let sampled = Rc::new(SampledSink::new(
                ring.clone(),
                SamplePolicy::one_in(99, u64::MAX).with_tail_keep(),
            ));
            let rec = Recorder::new(sampled.clone());
            {
                let _g = rec.span("gather");
                rec.emit(call(None, 3.0));
                rec.emit(signal.clone());
            }
            let kept = ring.events();
            assert_eq!(kept.len(), 4, "begin + cold + signal + end");
            assert!(sampled.dropped_charge().is_zero());
        }
    }

    #[test]
    fn tail_keep_resolves_clean_spans_as_dropped() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            SamplePolicy::one_in(99, u64::MAX).with_tail_keep(),
        ));
        let rec = Recorder::new(sampled.clone());
        {
            let _g = rec.span("gather");
            rec.emit(call(None, 3.0));
        }
        assert!(ring.events().is_empty(), "clean span stays dropped");
        let dropped = sampled.dropped_charge();
        assert_eq!(dropped.invocations, 1);
        assert!((dropped.time_invocation - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tail_keep_nested_spans_flush_ancestors_in_order() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            SamplePolicy::one_in(99, u64::MAX).with_tail_keep(),
        ));
        let rec = Recorder::new(sampled.clone());
        {
            let _outer = rec.span("gather");
            rec.emit(call(None, 1.0));
            {
                let _clean = rec.span("gather/shard0");
                rec.emit(call(None, 1.0)); // folds into the outer buffer
            }
            {
                let _faulty = rec.span("gather/shard1");
                rec.emit(call(Some("injected fault"), 1.0));
            }
        }
        let kept = ring.events();
        let seqs: Vec<u64> = kept.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "ordered: {seqs:?}");
        // Span-scoped retention: the clean sibling closed *before* the
        // signal, but the signal fired inside the same enclosing span, so
        // the whole folded subtree is retained with it.
        for want in ["gather", "gather/shard0", "gather/shard1"] {
            assert!(
                kept.iter().any(|e| matches!(
                    &e.kind,
                    EventKind::SpanBegin { label, .. } if label == want
                )),
                "{want} begin retained"
            );
        }
        // begin + cold + (begin + cold + end) + (begin + fault + end) + end
        assert_eq!(kept.len(), 9);
        assert!(sampled.dropped_charge().is_zero(), "nothing was dropped");
    }

    #[test]
    fn tail_keep_retains_clean_children_opened_after_promotion() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            SamplePolicy::one_in(99, u64::MAX).with_tail_keep(),
        ));
        let rec = Recorder::new(sampled.clone());
        {
            let _outer = rec.span("gather");
            rec.emit(call(Some("injected fault"), 1.0)); // promotes outer
            {
                // Opened under the now-promoted span: inherits retention,
                // so "the whole span's events" really means all of them.
                let _clean = rec.span("gather/shard0");
                rec.emit(call(None, 2.0));
            }
        }
        let kept = ring.events();
        // begin + fault + (begin + cold + end) + end
        assert_eq!(kept.len(), 6);
        let seqs: Vec<u64> = kept.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "ordered: {seqs:?}");
        assert!(sampled.dropped_charge().is_zero(), "nothing was dropped");
    }

    #[test]
    fn tail_keep_resolves_clean_subtrees_with_charges_accounted() {
        let ring = Rc::new(RingSink::unbounded());
        let sampled = Rc::new(SampledSink::new(
            ring.clone(),
            SamplePolicy::one_in(99, u64::MAX).with_tail_keep(),
        ));
        let rec = Recorder::new(sampled.clone());
        {
            let _outer = rec.span("gather");
            {
                let _clean = rec.span("gather/shard0");
                rec.emit(call(None, 2.0));
            }
            rec.emit(call(None, 3.0));
        }
        assert!(ring.events().is_empty(), "fully clean subtree stays dropped");
        let dropped = sampled.dropped_charge();
        assert_eq!(dropped.invocations, 2, "both buffered calls accounted");
        assert!((dropped.time_invocation - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_across_runs() {
        let run = || {
            let ring = Rc::new(RingSink::unbounded());
            let sampled = Rc::new(SampledSink::new(ring.clone(), SamplePolicy::one_in(42, 3)));
            let rec = Recorder::new(sampled);
            for i in 0..20 {
                let _s = rec.span(&format!("work{i}"));
                rec.emit(call(None, 1.0));
            }
            ring.events()
                .iter()
                .map(|e| e.seq)
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty() && a.len() < 60, "a strict subsample: {a:?}");
    }
}
