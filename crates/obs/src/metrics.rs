//! BTreeMap-backed metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Keys are plain dotted strings; events served by shard `i` additionally
//! bump a `shard{i}.`-prefixed copy of each key, so a snapshot can be
//! narrowed to one shard with [`MetricsSnapshot::for_shard`]. BTreeMaps
//! keep iteration (and therefore rendering) deterministic.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{Event, EventKind};

/// A histogram over fixed power-of-two buckets: bucket `k` counts values
/// `v` with `v <= 2^k` (the last bucket is an unbounded overflow bucket).
/// The bucket layout is fixed at construction, so merging and rendering
/// never depend on the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; one extra overflow bucket
    /// follows the last bound.
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// `buckets` power-of-two bounds `1, 2, 4, …, 2^(buckets-1)` plus an
    /// overflow bucket.
    pub fn pow2(buckets: usize) -> Self {
        let bounds: Vec<u64> = (0..buckets as u32).map(|k| 1u64 << k).collect();
        let counts = vec![0; buckets + 1];
        Self { bounds, counts }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The representative value reported for bucket `idx`: the rounded-up
    /// midpoint of the bucket's value range. The unbounded overflow
    /// bucket reports the midpoint of the *next* doubling — the best
    /// guess the layout allows.
    fn midpoint(&self, idx: usize) -> u64 {
        let lo = if idx == 0 { 0 } else { self.bounds[idx - 1] + 1 };
        let hi = match self.bounds.get(idx) {
            Some(&b) => b,
            None => self
                .bounds
                .last()
                .map(|&b| b.saturating_mul(2))
                .unwrap_or(u64::MAX),
        };
        lo + (hi - lo).div_ceil(2)
    }

    /// Deterministic quantile estimate from the bucket midpoints: the
    /// midpoint of the bucket holding the `ceil(q × total)`-th smallest
    /// observation. `q` is clamped into `[0, 1]` (NaN reads as 0), so
    /// `q = 0.0` is the lowest occupied bucket and `q = 1.0` the highest —
    /// both always defined on a non-empty histogram. `None` only when the
    /// histogram has no observations at all.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(self.midpoint(idx));
            }
        }
        // Unreachable: the cumulative count reaches `total ≥ rank`, but
        // keep the result defined rather than panicking on a future edit.
        Some(self.midpoint(self.counts.len() - 1))
    }

    /// `(upper_bound, count)` pairs for the non-empty buckets; the
    /// overflow bucket reports `u64::MAX` as its bound.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bounds.get(i).copied().unwrap_or(u64::MAX), c))
            .collect()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .nonzero()
            .iter()
            .map(|&(b, c)| {
                if b == u64::MAX {
                    format!("inf:{c}")
                } else {
                    format!("≤{b}:{c}")
                }
            })
            .collect();
        write!(f, "[{}]", parts.join(" "))
    }
}

/// The registry and its snapshot are the same shape; a snapshot is just a
/// clone taken at a point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Accumulated floating-point values (simulated seconds, ratios).
    pub values: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `key`.
    pub fn incr(&mut self, key: &str, by: u64) {
        if by > 0 {
            *self.counters.entry(key.to_string()).or_insert(0) += by;
        }
    }

    /// Adds `by` to value `key`.
    pub fn add_value(&mut self, key: &str, by: f64) {
        if by != 0.0 {
            *self.values.entry(key.to_string()).or_insert(0.0) += by;
        }
    }

    /// Sets value `key` (gauge semantics).
    pub fn set_value(&mut self, key: &str, v: f64) {
        self.values.insert(key.to_string(), v);
    }

    /// Sets counter `key` (gauge semantics for integer facts such as
    /// per-shard document counts).
    pub fn set_counter(&mut self, key: &str, v: u64) {
        self.counters.insert(key.to_string(), v);
    }

    /// Records `v` into histogram `key`, creating it with `pow2(24)`
    /// buckets on first use.
    pub fn observe(&mut self, key: &str, v: u64) {
        self.histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::pow2(24))
            .observe(v);
    }

    /// `(p50, p90, p99)` quantile estimates for histogram `key`, from
    /// bucket midpoints. `None` when the histogram is absent or empty.
    pub fn quantiles(&self, key: &str) -> Option<(u64, u64, u64)> {
        let h = self.histograms.get(key)?;
        Some((h.quantile(0.50)?, h.quantile(0.90)?, h.quantile(0.99)?))
    }

    /// Folds one event into the registry — the single definition of how
    /// the event stream maps to metrics keys, shared by the live
    /// [`Recorder`](crate::Recorder) and offline trace replay.
    pub fn absorb(&mut self, kind: &EventKind) {
        let shard_key =
            |shard: &Option<usize>, key: &str| shard.map(|i| format!("shard{i}.{key}"));
        match kind {
            EventKind::Call {
                op,
                shard,
                err,
                charge,
                ..
            } => {
                let calls = format!("calls.{op}");
                self.incr(&calls, 1);
                if let Some(k) = shard_key(shard, &calls) {
                    self.incr(&k, 1);
                }
                for (key, v) in [
                    ("postings", charge.postings),
                    ("docs_short", charge.docs_short),
                    ("docs_long", charge.docs_long),
                    ("faults", charge.faults),
                    ("rejected", charge.rejected),
                ] {
                    if v > 0 {
                        self.incr(key, v as u64);
                        if let Some(k) = shard_key(shard, key) {
                            self.incr(&k, v as u64);
                        }
                    }
                }
                if err.is_none() && *op != "retrieve" {
                    self.observe("hist.postings", charge.postings.max(0) as u64);
                    self.observe("hist.docs_short", charge.docs_short.max(0) as u64);
                }
            }
            EventKind::Backoff { shard, charge, .. } => {
                self.incr("retries", charge.retries.max(0) as u64);
                self.add_value("time_backoff", charge.time_backoff);
                if let Some(k) = shard_key(shard, "retries") {
                    self.incr(&k, charge.retries.max(0) as u64);
                }
                if let Some(k) = shard_key(shard, "time_backoff") {
                    self.add_value(&k, charge.time_backoff);
                }
            }
            EventKind::Rebate { .. } => self.incr("rebates", 1),
            EventKind::Retry { .. } => self.incr("retry_attempts", 1),
            EventKind::Failover { shard, replica } => {
                self.incr("failovers", 1);
                self.incr(&format!("shard{shard}.failovers"), 1);
                self.incr(&format!("shard{shard}.replica{replica}.serves"), 1);
            }
            EventKind::CircuitOpen { shard, .. } => {
                self.incr("circuit.open", 1);
                self.incr(&format!("shard{shard}.circuit.open"), 1);
            }
            EventKind::CircuitClose { shard, .. } => {
                self.incr("circuit.close", 1);
                self.incr(&format!("shard{shard}.circuit.close"), 1);
            }
            EventKind::Hedge { shard, replica } => {
                self.incr("hedges", 1);
                self.incr(&format!("shard{shard}.hedges"), 1);
                self.incr(&format!("shard{shard}.replica{replica}.hedges"), 1);
            }
            EventKind::Cancel { shard, replica } => {
                self.incr("cancels", 1);
                self.incr(&format!("shard{shard}.cancels"), 1);
                self.incr(&format!("shard{shard}.replica{replica}.cancels"), 1);
            }
            EventKind::DeadlineMiss { shard } => {
                self.incr("deadline.miss", 1);
                if let Some(k) = shard_key(shard, "deadline.miss") {
                    self.incr(&k, 1);
                }
            }
            EventKind::MigrationBegin { moves, docs, .. } => {
                self.incr("migration.begin", 1);
                self.incr("migration.docs_planned", *docs);
                self.incr("migration.moves_planned", *moves);
            }
            EventKind::MigrationBatch {
                src,
                dst,
                docs,
                postings,
                ..
            } => {
                self.incr("migration.batches", 1);
                self.incr("migration.docs_moved", *docs);
                self.incr("migration.postings_moved", *postings);
                self.incr(&format!("shard{src}.migration.docs_out"), *docs);
                self.incr(&format!("shard{dst}.migration.docs_in"), *docs);
            }
            EventKind::MigrationResume { docs, .. } => {
                self.incr("migration.resumes", 1);
                self.incr("migration.docs_resumed", *docs);
            }
            EventKind::MigrationAbort { reverted, .. } => {
                self.incr("migration.aborts", 1);
                self.incr("migration.docs_reverted", *reverted);
            }
            EventKind::RoutingStale { shards, .. } => {
                self.incr("routing.stale", 1);
                self.incr("routing.stale_shards", shards.len() as u64);
            }
            EventKind::DocTraffic { shard, docs } => {
                self.incr("traffic.docs", docs.len() as u64);
                if let Some(k) = shard_key(shard, "traffic.docs") {
                    self.incr(&k, docs.len() as u64);
                }
            }
            EventKind::SkewAlert { shard, hot, .. } => {
                let key = if *hot {
                    "monitor.skew.hot"
                } else {
                    "monitor.skew.clear"
                };
                self.incr(key, 1);
                self.incr(&format!("shard{shard}.{key}"), 1);
            }
            EventKind::SloAlert { firing, .. } => {
                self.incr(
                    if *firing {
                        "monitor.slo.alert"
                    } else {
                        "monitor.slo.clear"
                    },
                    1,
                );
            }
            EventKind::DriftAlert {
                component, drifted, ..
            } => {
                let key = if *drifted {
                    "monitor.drift.alert"
                } else {
                    "monitor.drift.clear"
                };
                self.incr(key, 1);
                self.incr(&format!("{key}.{component}"), 1);
            }
            EventKind::RebalanceAdvice { src, dst, .. } => {
                self.incr("monitor.advice", 1);
                self.incr(&format!("shard{src}.monitor.advice_out"), 1);
                self.incr(&format!("shard{dst}.monitor.advice_in"), 1);
            }
            EventKind::Admit { tenant, .. } => {
                self.incr("serve.admitted", 1);
                self.incr(&format!("tenant{tenant}.admitted"), 1);
            }
            EventKind::Shed { tenant, .. } => {
                self.incr("serve.shed", 1);
                self.incr(&format!("tenant{tenant}.shed"), 1);
            }
            EventKind::BudgetExhausted { tenant, .. } => {
                self.incr("serve.budget_exhausted", 1);
                self.incr(&format!("tenant{tenant}.budget_exhausted"), 1);
            }
            EventKind::CacheHit { scope, .. } => {
                self.incr("serve.cache_hits", 1);
                self.incr(&format!("serve.cache_hits.{scope}"), 1);
            }
            EventKind::SpanBegin { .. } => self.incr("spans", 1),
            EventKind::SpanEnd { .. } => {}
            EventKind::Planner(p) => {
                self.incr("planner.candidates", 1);
                if p.chosen {
                    self.incr("planner.chosen", 1);
                }
            }
            EventKind::EstimateSample { .. } => self.incr("analyze.samples", 1),
            EventKind::EstimateDrift { firing, component, .. } => {
                let key = if *firing {
                    "monitor.estimate.alert"
                } else {
                    "monitor.estimate.clear"
                };
                self.incr(key, 1);
                self.incr(&format!("{key}.{component}"), 1);
            }
        }
    }

    /// The registry a live recorder would have built for `events` —
    /// offline replay for rendered traces (the `explain` binary rebuilds
    /// quantiles from a JSONL file through this).
    pub fn from_events(events: &[Event]) -> Self {
        let mut m = Self::new();
        for ev in events {
            m.absorb(&ev.kind);
        }
        m
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Value (0.0 when absent).
    pub fn value(&self, key: &str) -> f64 {
        self.values.get(key).copied().unwrap_or(0.0)
    }

    /// The sub-snapshot of keys prefixed `shard{i}.`, with the prefix
    /// stripped — the per-shard view the planner reads.
    pub fn for_shard(&self, shard: usize) -> MetricsSnapshot {
        let prefix = format!("shard{shard}.");
        let strip = |m: &BTreeMap<String, u64>| {
            m.iter()
                .filter_map(|(k, &v)| k.strip_prefix(&prefix).map(|s| (s.to_string(), v)))
                .collect()
        };
        MetricsSnapshot {
            counters: strip(&self.counters),
            values: self
                .values
                .iter()
                .filter_map(|(k, &v)| k.strip_prefix(&prefix).map(|s| (s.to_string(), v)))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|(k, v)| k.strip_prefix(&prefix).map(|s| (s.to_string(), v.clone())))
                .collect(),
        }
    }

    /// Merges `other` into `self` (counters and values add, histograms
    /// add bucket-wise when layouts match, otherwise `other` wins).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.bounds == h.bounds => {
                    for (c, o) in mine.counts.iter_mut().zip(&h.counts) {
                        *c += o;
                    }
                }
                _ => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Deterministic multi-line rendering: one `key value` line per
    /// counter, value, and histogram, in BTreeMap (lexicographic) order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.values {
            out.push_str(&format!("{k} {v:.6}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("{k} {h}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::pow2(3); // bounds 1, 2, 4 + overflow
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(100);
        assert_eq!(h.total(), 4);
        assert_eq!(h.nonzero(), vec![(1, 1), (2, 1), (4, 1), (u64::MAX, 1)]);
        assert_eq!(h.to_string(), "[≤1:1 ≤2:1 ≤4:1 inf:1]");
    }

    #[test]
    fn shard_filtering_strips_prefix() {
        let mut m = MetricsSnapshot::new();
        m.incr("calls.search", 3);
        m.incr("shard0.calls.search", 2);
        m.incr("shard1.calls.search", 1);
        m.add_value("shard0.time_backoff", 1.5);
        let s0 = m.for_shard(0);
        assert_eq!(s0.counter("calls.search"), 2);
        assert!((s0.value("time_backoff") - 1.5).abs() < 1e-12);
        assert_eq!(s0.counters.len(), 1);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsSnapshot::new();
        a.incr("x", 1);
        a.observe("h", 2);
        let mut b = MetricsSnapshot::new();
        b.incr("x", 2);
        b.observe("h", 2);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.histograms["h"].total(), 2);
    }

    #[test]
    fn quantiles_come_from_bucket_midpoints() {
        let mut h = Histogram::pow2(4); // bounds 1, 2, 4, 8 + overflow
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for _ in 0..9 {
            h.observe(1);
        }
        h.observe(7); // bucket (4,8] → midpoint 7
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.9), Some(1), "rank 9 still in the first bucket");
        assert_eq!(h.quantile(0.99), Some(7));
        h.observe(1000); // overflow → midpoint of the next doubling (8,16]
        assert_eq!(h.quantile(1.0), Some(13));
    }

    #[test]
    fn snapshot_quantiles_and_event_replay_match_live_registry() {
        use crate::event::Charge;
        let charge = Charge {
            invocations: 1,
            postings: 100,
            docs_short: 3,
            ..Charge::default()
        };
        let events = vec![Event {
            seq: 0,
            clock: 0.0,
            kind: EventKind::Call {
                op: "search",
                shard: Some(1),
                terms: 2,
                err: None,
                charge,
            },
        }];
        let replayed = MetricsSnapshot::from_events(&events);
        let mut live = MetricsSnapshot::new();
        live.absorb(&events[0].kind);
        assert_eq!(replayed, live);
        let (p50, p90, p99) = replayed.quantiles("hist.postings").unwrap();
        assert_eq!((p50, p90, p99), (97, 97, 97), "single obs in (64,128]");
        assert!(replayed.quantiles("hist.nope").is_none());
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut m = MetricsSnapshot::new();
        m.incr("b", 1);
        m.incr("a", 1);
        m.add_value("t", 2.5);
        let r = m.render();
        assert_eq!(r, "a 1\nb 1\nt 2.500000\n");
    }

    #[test]
    fn quantile_edges_are_defined() {
        // Empty histograms have no quantiles at any q.
        let h = Histogram::pow2(4);
        for q in [0.0, 0.5, 1.0, f64::NAN, -3.0, 7.0] {
            assert_eq!(h.quantile(q), None, "empty at q={q}");
        }
        // Non-empty: q=0 is the lowest occupied bucket, q=1 the highest,
        // and out-of-range / NaN q clamp instead of panicking or lying.
        let mut h = Histogram::pow2(4); // bounds 1, 2, 4, 8 + overflow
        h.observe(1);
        h.observe(7); // bucket (4,8] → midpoint 7
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(7));
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    fn single_bucket_histograms_have_quantiles() {
        // pow2(0): no bounds, only the unbounded overflow bucket. Its
        // midpoint is the midpoint of (0, u64::MAX] — crude, but defined.
        let mut h = Histogram::pow2(0);
        assert_eq!(h.quantile(0.5), None);
        h.observe(5);
        let mid = 1u64 << 63;
        assert_eq!(h.quantile(0.0), Some(mid));
        assert_eq!(h.quantile(0.5), Some(mid));
        assert_eq!(h.quantile(1.0), Some(mid));
        // pow2(1): one real bucket (0,1] plus overflow reporting the next
        // doubling's midpoint.
        let mut h = Histogram::pow2(1);
        h.observe(1);
        assert_eq!(h.quantile(1.0), Some(1));
        h.observe(9);
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(2), "overflow reports (1,2] midpoint");
    }

    #[test]
    fn golden_render_with_shards_and_histograms() {
        use crate::event::Charge;
        let mut m = MetricsSnapshot::new();
        m.absorb(&EventKind::Call {
            op: "search",
            shard: Some(1),
            terms: 2,
            err: None,
            charge: Charge {
                invocations: 1,
                postings: 3,
                docs_short: 2,
                ..Charge::default()
            },
        });
        m.absorb(&EventKind::Failover {
            shard: 1,
            replica: 1,
        });
        m.add_value("time_backoff", 0.25);
        assert_eq!(
            m.render(),
            "calls.search 1\n\
             docs_short 2\n\
             failovers 1\n\
             postings 3\n\
             shard1.calls.search 1\n\
             shard1.docs_short 2\n\
             shard1.failovers 1\n\
             shard1.postings 3\n\
             shard1.replica1.serves 1\n\
             time_backoff 0.250000\n\
             hist.docs_short [≤2:1]\n\
             hist.postings [≤4:1]\n"
        );
        // for_shard narrows to the prefixed keys, prefix stripped, and the
        // narrowed render is golden too.
        assert_eq!(
            m.for_shard(1).render(),
            "calls.search 1\n\
             docs_short 2\n\
             failovers 1\n\
             postings 3\n\
             replica1.serves 1\n"
        );
        assert_eq!(m.for_shard(3).render(), "");
    }

    /// Seeded pseudo-random snapshot for the merge property test.
    fn arbitrary_snapshot(seed: u64) -> MetricsSnapshot {
        fn splitmix64(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
        let keys = ["a", "b.c", "shard0.x", "shard1.x", "zz"];
        let mut m = MetricsSnapshot::new();
        let n = 1 + (splitmix64(seed) % 12) as usize;
        for i in 0..n {
            let r = splitmix64(seed ^ (i as u64) << 8);
            let key = keys[(r % keys.len() as u64) as usize];
            match (r >> 8) % 3 {
                0 => m.incr(key, 1 + (r >> 16) % 5),
                1 => m.add_value(key, ((r >> 16) % 100) as f64 / 8.0),
                _ => m.observe(key, 1 + (r >> 16) % 300),
            }
        }
        m
    }

    #[test]
    fn merge_is_order_independent() {
        // Property: for snapshots built through the public API (all
        // histograms share the pow2(24) layout), merge(a, b) == merge(b, a)
        // field for field, and the BTreeMap-backed render is therefore
        // byte-identical regardless of merge order.
        for seed in 0..64u64 {
            let a = arbitrary_snapshot(seed);
            let b = arbitrary_snapshot(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xDEAD);
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge not commutative at seed {seed}");
            assert_eq!(ab.render(), ba.render(), "render differs at seed {seed}");
        }
    }
}
