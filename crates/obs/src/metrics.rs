//! BTreeMap-backed metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Keys are plain dotted strings; events served by shard `i` additionally
//! bump a `shard{i}.`-prefixed copy of each key, so a snapshot can be
//! narrowed to one shard with [`MetricsSnapshot::for_shard`]. BTreeMaps
//! keep iteration (and therefore rendering) deterministic.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{Event, EventKind};

/// A histogram over fixed power-of-two buckets: bucket `k` counts values
/// `v` with `v <= 2^k` (the last bucket is an unbounded overflow bucket).
/// The bucket layout is fixed at construction, so merging and rendering
/// never depend on the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; one extra overflow bucket
    /// follows the last bound.
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// `buckets` power-of-two bounds `1, 2, 4, …, 2^(buckets-1)` plus an
    /// overflow bucket.
    pub fn pow2(buckets: usize) -> Self {
        let bounds: Vec<u64> = (0..buckets as u32).map(|k| 1u64 << k).collect();
        let counts = vec![0; buckets + 1];
        Self { bounds, counts }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The representative value reported for bucket `idx`: the rounded-up
    /// midpoint of the bucket's value range. The unbounded overflow
    /// bucket reports the midpoint of the *next* doubling — the best
    /// guess the layout allows.
    fn midpoint(&self, idx: usize) -> u64 {
        let lo = if idx == 0 { 0 } else { self.bounds[idx - 1] + 1 };
        let hi = match self.bounds.get(idx) {
            Some(&b) => b,
            None => self
                .bounds
                .last()
                .map(|&b| b.saturating_mul(2))
                .unwrap_or(u64::MAX),
        };
        lo + (hi - lo).div_ceil(2)
    }

    /// Deterministic quantile estimate from the bucket midpoints: the
    /// midpoint of the bucket holding the `ceil(q × total)`-th smallest
    /// observation. `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(self.midpoint(idx));
            }
        }
        None
    }

    /// `(upper_bound, count)` pairs for the non-empty buckets; the
    /// overflow bucket reports `u64::MAX` as its bound.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (self.bounds.get(i).copied().unwrap_or(u64::MAX), c))
            .collect()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .nonzero()
            .iter()
            .map(|&(b, c)| {
                if b == u64::MAX {
                    format!("inf:{c}")
                } else {
                    format!("≤{b}:{c}")
                }
            })
            .collect();
        write!(f, "[{}]", parts.join(" "))
    }
}

/// The registry and its snapshot are the same shape; a snapshot is just a
/// clone taken at a point in time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Accumulated floating-point values (simulated seconds, ratios).
    pub values: BTreeMap<String, f64>,
    /// Fixed-bucket histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `key`.
    pub fn incr(&mut self, key: &str, by: u64) {
        if by > 0 {
            *self.counters.entry(key.to_string()).or_insert(0) += by;
        }
    }

    /// Adds `by` to value `key`.
    pub fn add_value(&mut self, key: &str, by: f64) {
        if by != 0.0 {
            *self.values.entry(key.to_string()).or_insert(0.0) += by;
        }
    }

    /// Sets value `key` (gauge semantics).
    pub fn set_value(&mut self, key: &str, v: f64) {
        self.values.insert(key.to_string(), v);
    }

    /// Sets counter `key` (gauge semantics for integer facts such as
    /// per-shard document counts).
    pub fn set_counter(&mut self, key: &str, v: u64) {
        self.counters.insert(key.to_string(), v);
    }

    /// Records `v` into histogram `key`, creating it with `pow2(24)`
    /// buckets on first use.
    pub fn observe(&mut self, key: &str, v: u64) {
        self.histograms
            .entry(key.to_string())
            .or_insert_with(|| Histogram::pow2(24))
            .observe(v);
    }

    /// `(p50, p90, p99)` quantile estimates for histogram `key`, from
    /// bucket midpoints. `None` when the histogram is absent or empty.
    pub fn quantiles(&self, key: &str) -> Option<(u64, u64, u64)> {
        let h = self.histograms.get(key)?;
        Some((h.quantile(0.50)?, h.quantile(0.90)?, h.quantile(0.99)?))
    }

    /// Folds one event into the registry — the single definition of how
    /// the event stream maps to metrics keys, shared by the live
    /// [`Recorder`](crate::Recorder) and offline trace replay.
    pub fn absorb(&mut self, kind: &EventKind) {
        let shard_key =
            |shard: &Option<usize>, key: &str| shard.map(|i| format!("shard{i}.{key}"));
        match kind {
            EventKind::Call {
                op,
                shard,
                err,
                charge,
                ..
            } => {
                let calls = format!("calls.{op}");
                self.incr(&calls, 1);
                if let Some(k) = shard_key(shard, &calls) {
                    self.incr(&k, 1);
                }
                for (key, v) in [
                    ("postings", charge.postings),
                    ("docs_short", charge.docs_short),
                    ("docs_long", charge.docs_long),
                    ("faults", charge.faults),
                    ("rejected", charge.rejected),
                ] {
                    if v > 0 {
                        self.incr(key, v as u64);
                        if let Some(k) = shard_key(shard, key) {
                            self.incr(&k, v as u64);
                        }
                    }
                }
                if err.is_none() && *op != "retrieve" {
                    self.observe("hist.postings", charge.postings.max(0) as u64);
                    self.observe("hist.docs_short", charge.docs_short.max(0) as u64);
                }
            }
            EventKind::Backoff { shard, charge, .. } => {
                self.incr("retries", charge.retries.max(0) as u64);
                self.add_value("time_backoff", charge.time_backoff);
                if let Some(k) = shard_key(shard, "retries") {
                    self.incr(&k, charge.retries.max(0) as u64);
                }
                if let Some(k) = shard_key(shard, "time_backoff") {
                    self.add_value(&k, charge.time_backoff);
                }
            }
            EventKind::Rebate { .. } => self.incr("rebates", 1),
            EventKind::Retry { .. } => self.incr("retry_attempts", 1),
            EventKind::Failover { shard, replica } => {
                self.incr("failovers", 1);
                self.incr(&format!("shard{shard}.failovers"), 1);
                self.incr(&format!("shard{shard}.replica{replica}.serves"), 1);
            }
            EventKind::CircuitOpen { shard, .. } => {
                self.incr("circuit.open", 1);
                self.incr(&format!("shard{shard}.circuit.open"), 1);
            }
            EventKind::CircuitClose { shard, .. } => {
                self.incr("circuit.close", 1);
                self.incr(&format!("shard{shard}.circuit.close"), 1);
            }
            EventKind::Hedge { shard, replica } => {
                self.incr("hedges", 1);
                self.incr(&format!("shard{shard}.hedges"), 1);
                self.incr(&format!("shard{shard}.replica{replica}.hedges"), 1);
            }
            EventKind::Cancel { shard, replica } => {
                self.incr("cancels", 1);
                self.incr(&format!("shard{shard}.cancels"), 1);
                self.incr(&format!("shard{shard}.replica{replica}.cancels"), 1);
            }
            EventKind::DeadlineMiss { shard } => {
                self.incr("deadline.miss", 1);
                if let Some(k) = shard_key(shard, "deadline.miss") {
                    self.incr(&k, 1);
                }
            }
            EventKind::MigrationBegin { moves, docs, .. } => {
                self.incr("migration.begin", 1);
                self.incr("migration.docs_planned", *docs);
                self.incr("migration.moves_planned", *moves);
            }
            EventKind::MigrationBatch {
                src,
                dst,
                docs,
                postings,
                ..
            } => {
                self.incr("migration.batches", 1);
                self.incr("migration.docs_moved", *docs);
                self.incr("migration.postings_moved", *postings);
                self.incr(&format!("shard{src}.migration.docs_out"), *docs);
                self.incr(&format!("shard{dst}.migration.docs_in"), *docs);
            }
            EventKind::MigrationResume { docs, .. } => {
                self.incr("migration.resumes", 1);
                self.incr("migration.docs_resumed", *docs);
            }
            EventKind::MigrationAbort { reverted, .. } => {
                self.incr("migration.aborts", 1);
                self.incr("migration.docs_reverted", *reverted);
            }
            EventKind::RoutingStale { shards, .. } => {
                self.incr("routing.stale", 1);
                self.incr("routing.stale_shards", shards.len() as u64);
            }
            EventKind::SpanBegin { .. } => self.incr("spans", 1),
            EventKind::SpanEnd { .. } => {}
            EventKind::Planner(p) => {
                self.incr("planner.candidates", 1);
                if p.chosen {
                    self.incr("planner.chosen", 1);
                }
            }
        }
    }

    /// The registry a live recorder would have built for `events` —
    /// offline replay for rendered traces (the `explain` binary rebuilds
    /// quantiles from a JSONL file through this).
    pub fn from_events(events: &[Event]) -> Self {
        let mut m = Self::new();
        for ev in events {
            m.absorb(&ev.kind);
        }
        m
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Value (0.0 when absent).
    pub fn value(&self, key: &str) -> f64 {
        self.values.get(key).copied().unwrap_or(0.0)
    }

    /// The sub-snapshot of keys prefixed `shard{i}.`, with the prefix
    /// stripped — the per-shard view the planner reads.
    pub fn for_shard(&self, shard: usize) -> MetricsSnapshot {
        let prefix = format!("shard{shard}.");
        let strip = |m: &BTreeMap<String, u64>| {
            m.iter()
                .filter_map(|(k, &v)| k.strip_prefix(&prefix).map(|s| (s.to_string(), v)))
                .collect()
        };
        MetricsSnapshot {
            counters: strip(&self.counters),
            values: self
                .values
                .iter()
                .filter_map(|(k, &v)| k.strip_prefix(&prefix).map(|s| (s.to_string(), v)))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|(k, v)| k.strip_prefix(&prefix).map(|s| (s.to_string(), v.clone())))
                .collect(),
        }
    }

    /// Merges `other` into `self` (counters and values add, histograms
    /// add bucket-wise when layouts match, otherwise `other` wins).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.bounds == h.bounds => {
                    for (c, o) in mine.counts.iter_mut().zip(&h.counts) {
                        *c += o;
                    }
                }
                _ => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Deterministic multi-line rendering: one `key value` line per
    /// counter, value, and histogram, in BTreeMap (lexicographic) order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.values {
            out.push_str(&format!("{k} {v:.6}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("{k} {h}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::pow2(3); // bounds 1, 2, 4 + overflow
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(100);
        assert_eq!(h.total(), 4);
        assert_eq!(h.nonzero(), vec![(1, 1), (2, 1), (4, 1), (u64::MAX, 1)]);
        assert_eq!(h.to_string(), "[≤1:1 ≤2:1 ≤4:1 inf:1]");
    }

    #[test]
    fn shard_filtering_strips_prefix() {
        let mut m = MetricsSnapshot::new();
        m.incr("calls.search", 3);
        m.incr("shard0.calls.search", 2);
        m.incr("shard1.calls.search", 1);
        m.add_value("shard0.time_backoff", 1.5);
        let s0 = m.for_shard(0);
        assert_eq!(s0.counter("calls.search"), 2);
        assert!((s0.value("time_backoff") - 1.5).abs() < 1e-12);
        assert_eq!(s0.counters.len(), 1);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsSnapshot::new();
        a.incr("x", 1);
        a.observe("h", 2);
        let mut b = MetricsSnapshot::new();
        b.incr("x", 2);
        b.observe("h", 2);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.histograms["h"].total(), 2);
    }

    #[test]
    fn quantiles_come_from_bucket_midpoints() {
        let mut h = Histogram::pow2(4); // bounds 1, 2, 4, 8 + overflow
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for _ in 0..9 {
            h.observe(1);
        }
        h.observe(7); // bucket (4,8] → midpoint 7
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(0.9), Some(1), "rank 9 still in the first bucket");
        assert_eq!(h.quantile(0.99), Some(7));
        h.observe(1000); // overflow → midpoint of the next doubling (8,16]
        assert_eq!(h.quantile(1.0), Some(13));
    }

    #[test]
    fn snapshot_quantiles_and_event_replay_match_live_registry() {
        use crate::event::Charge;
        let charge = Charge {
            invocations: 1,
            postings: 100,
            docs_short: 3,
            ..Charge::default()
        };
        let events = vec![Event {
            seq: 0,
            clock: 0.0,
            kind: EventKind::Call {
                op: "search",
                shard: Some(1),
                terms: 2,
                err: None,
                charge,
            },
        }];
        let replayed = MetricsSnapshot::from_events(&events);
        let mut live = MetricsSnapshot::new();
        live.absorb(&events[0].kind);
        assert_eq!(replayed, live);
        let (p50, p90, p99) = replayed.quantiles("hist.postings").unwrap();
        assert_eq!((p50, p90, p99), (97, 97, 97), "single obs in (64,128]");
        assert!(replayed.quantiles("hist.nope").is_none());
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut m = MetricsSnapshot::new();
        m.incr("b", 1);
        m.incr("a", 1);
        m.add_value("t", 2.5);
        let r = m.render();
        assert_eq!(r, "a 1\nb 1\nt 2.500000\n");
    }
}
