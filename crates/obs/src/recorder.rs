//! The recorder: sequence numbers, the simulated clock, span tracking,
//! and the metrics registry.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::event::{Event, EventKind};
use crate::metrics::MetricsSnapshot;
use crate::sink::{NoopSink, Sink};

/// Observes charges and scopes; stamps every event with a dense sequence
/// number and the simulated clock.
///
/// The simulated clock is defined as the cumulative [`Charge::total`]
/// (simulated seconds) of every chargeable event observed so far — it
/// advances exactly as fast as the ledgers it watches, involves no
/// wall-clock reads, and is therefore deterministic.
///
/// [`Charge::total`]: crate::event::Charge::total
pub struct Recorder {
    sink: Rc<dyn Sink>,
    seq: Cell<u64>,
    clock: Cell<f64>,
    next_span: Cell<u64>,
    stack: RefCell<Vec<u64>>,
    metrics: RefCell<MetricsSnapshot>,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("seq", &self.seq.get())
            .field("clock", &self.clock.get())
            .field("open_spans", &self.stack.borrow().len())
            .finish()
    }
}

impl Recorder {
    /// A recorder feeding `sink`.
    pub fn new(sink: Rc<dyn Sink>) -> Rc<Self> {
        Rc::new(Self {
            sink,
            seq: Cell::new(0),
            clock: Cell::new(0.0),
            next_span: Cell::new(0),
            stack: RefCell::new(Vec::new()),
            metrics: RefCell::new(MetricsSnapshot::new()),
        })
    }

    /// A recorder that only maintains metrics (events are dropped).
    pub fn noop() -> Rc<Self> {
        Self::new(Rc::new(NoopSink))
    }

    /// Current simulated clock (seconds).
    pub fn clock(&self) -> f64 {
        self.clock.get()
    }

    /// Events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.seq.get()
    }

    /// Number of spans currently open.
    pub fn open_spans(&self) -> usize {
        self.stack.borrow().len()
    }

    /// A point-in-time copy of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.borrow().clone()
    }

    /// Folds externally computed metrics (e.g. per-shard collection
    /// statistics) into the registry.
    pub fn merge_metrics(&self, snap: &MetricsSnapshot) {
        self.metrics.borrow_mut().merge(snap);
    }

    /// Stamps and emits one event: assigns the next sequence number,
    /// advances the clock by the event's charge, updates metrics, and
    /// forwards to the sink.
    pub fn emit(&self, kind: EventKind) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        if let Some(charge) = kind.charge() {
            self.clock.set(self.clock.get() + charge.total());
        }
        // The event→metrics mapping lives on the snapshot so offline
        // trace replay produces the same registry a live run would.
        self.metrics.borrow_mut().absorb(&kind);
        let ev = Event {
            seq,
            clock: self.clock.get(),
            kind,
        };
        self.sink.record(&ev);
    }

    /// Opens a span; the returned guard closes it on drop (including on
    /// early returns and error unwinds, so a failed scatter/gather never
    /// leaves a dangling open span).
    pub fn span(self: &Rc<Self>, label: &str) -> SpanGuard {
        let id = self.next_span.get();
        self.next_span.set(id + 1);
        let parent = self.stack.borrow().last().copied();
        self.stack.borrow_mut().push(id);
        self.emit(EventKind::SpanBegin {
            id,
            parent,
            label: label.to_string(),
        });
        SpanGuard {
            rec: Rc::clone(self),
            id,
            label: label.to_string(),
        }
    }
}

/// Closes its span when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    rec: Rc<Recorder>,
    id: u64,
    label: String,
}

impl SpanGuard {
    /// The span id this guard closes.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Guards normally drop innermost-first; truncating at this span's
        // position also closes any children a panic or early return left
        // on the stack.
        {
            let mut st = self.rec.stack.borrow_mut();
            if let Some(pos) = st.iter().rposition(|&x| x == self.id) {
                st.truncate(pos);
            }
        }
        self.rec.emit(EventKind::SpanEnd {
            id: self.id,
            label: std::mem::take(&mut self.label),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Charge;
    use crate::sink::RingSink;

    #[test]
    fn clock_advances_by_charge_totals() {
        let ring = Rc::new(RingSink::unbounded());
        let rec = Recorder::new(ring.clone());
        rec.emit(EventKind::Call {
            op: "search",
            shard: None,
            terms: 1,
            err: None,
            charge: Charge {
                invocations: 1,
                time_invocation: 3.0,
                ..Charge::default()
            },
        });
        rec.emit(EventKind::Retry {
            shard: None,
            attempt: 1,
        });
        let evs = ring.events();
        assert_eq!(evs.len(), 2);
        assert!((evs[0].clock - 3.0).abs() < 1e-12);
        assert!((evs[1].clock - 3.0).abs() < 1e-12, "free events hold the clock");
        assert_eq!(evs[1].seq, 1);
    }

    #[test]
    fn spans_nest_and_close_on_drop() {
        let ring = Rc::new(RingSink::unbounded());
        let rec = Recorder::new(ring.clone());
        {
            let _outer = rec.span("outer");
            {
                let _inner = rec.span("inner");
                assert_eq!(rec.open_spans(), 2);
            }
            assert_eq!(rec.open_spans(), 1);
        }
        assert_eq!(rec.open_spans(), 0);
        let kinds: Vec<String> = ring
            .events()
            .iter()
            .map(|e| match &e.kind {
                EventKind::SpanBegin { label, parent, .. } => {
                    format!("begin:{label}:{parent:?}")
                }
                EventKind::SpanEnd { label, .. } => format!("end:{label}"),
                _ => "other".into(),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "begin:outer:None",
                "begin:inner:Some(0)",
                "end:inner",
                "end:outer"
            ]
        );
    }

    #[test]
    fn out_of_order_drop_still_closes_children() {
        let ring = Rc::new(RingSink::unbounded());
        let rec = Recorder::new(ring.clone());
        let outer = rec.span("outer");
        let _inner = rec.span("inner");
        drop(outer); // closes outer AND pops inner off the open stack
        assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn metrics_count_calls_per_shard() {
        let rec = Recorder::noop();
        rec.emit(EventKind::Call {
            op: "search",
            shard: Some(1),
            terms: 1,
            err: None,
            charge: Charge {
                invocations: 1,
                postings: 10,
                docs_short: 2,
                ..Charge::default()
            },
        });
        let m = rec.metrics();
        assert_eq!(m.counter("calls.search"), 1);
        assert_eq!(m.counter("shard1.calls.search"), 1);
        assert_eq!(m.counter("postings"), 10);
        assert_eq!(m.for_shard(1).counter("docs_short"), 2);
    }
}
