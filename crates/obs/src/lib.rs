//! Deterministic flight recorder for the textjoin workspace.
//!
//! The cost model already accounts for every simulated charge in a single
//! aggregate [`Usage`](https://docs.rs) ledger; this crate records *where*
//! each charge happened. It defines a span/event model stamped with the
//! **simulated clock** — the cumulative simulated seconds of all charges
//! observed so far — never wall-clock time, so traces are byte-identical
//! across runs (the workspace determinism invariant extends to the trace).
//!
//! Layering: this crate sits *below* `textjoin-text` (which emits
//! server-call events) and is dependency-free. It therefore cannot name
//! `Usage`; instead every chargeable event carries a [`Charge`] whose
//! eleven fields mirror the ledger one-to-one. Summing the charges of a
//! trace must reproduce `Usage::since` exactly — `tests/audit.rs` in the
//! workspace root enforces that reconciliation per method, per backend.
//!
//! Recording is strictly passive: a [`Recorder`] observes charges that the
//! ledgers have already booked and never books any itself, so attaching a
//! recorder (any sink, including [`NoopSink`]) must leave every `Usage`
//! field untouched.

mod analyze;
mod calibrate;
mod event;
mod explain;
mod metrics;
mod monitor;
mod recorder;
mod sample;
mod sink;
mod trace;

pub use analyze::{
    q_error, quantile, CostVector, NodeActual, NodeEstimate, NodeQuality, PlanQuality,
};
pub use calibrate::{calibrate_trace, ComponentFit, TraceCalibration};
pub use event::{Charge, Event, EventKind, PlannerChoice};
pub use explain::render;
pub use metrics::{Histogram, MetricsSnapshot};
pub use monitor::{
    render_windows, Advice, Monitor, MonitorConfig, OwnerFn, ReplicaWindow, ShardWindow,
    WindowStats,
};
pub use recorder::{Recorder, SpanGuard};
pub use sample::{is_hot, splitmix64, SampledSink, SamplePolicy};
pub use sink::{FanoutSink, JsonlSink, NoopSink, RingSink, Sink};
pub use trace::{parse_jsonl, TraceParseError};
