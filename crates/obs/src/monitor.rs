//! Continuous telemetry: a streaming consumer of the flight-recorder
//! event stream that buckets events into fixed **simulated-clock**
//! windows and runs edge-triggered health detectors over the closed
//! windows.
//!
//! The [`Monitor`] is a [`Sink`]: attach it live behind a
//! [`FanoutSink`](crate::FanoutSink) tee next to whatever trace sink a
//! run already uses, or feed it a parsed JSONL trace offline via
//! [`Monitor::replay`] — both paths drive the same `record` code, so a
//! replayed trace produces byte-identical windows and alerts to the live
//! run that recorded it.
//!
//! Like every sink, the monitor is strictly passive: it observes charges
//! the ledgers already booked, books none itself, and never feeds
//! anything back into the recorder. Its detector verdicts surface as a
//! *separate* event stream ([`Monitor::alerts`]) with its own sequence
//! numbers, stamped at window boundaries of the simulated clock — so
//! attaching a monitor cannot change a single byte of the recorded trace
//! or a single field of any `Usage` ledger (`tests/audit.rs` pins this).
//!
//! Four detectors run when a window closes, all charge-free and
//! edge-triggered (one event on enter, one on clear — steady state is
//! silent):
//!
//! - **Load skew** ([`EventKind::SkewAlert`]): a shard whose share of the
//!   windowed invoice crosses the hot threshold enters the hot state and
//!   stays there until its share falls below the (lower) clear threshold
//!   — classic hysteresis so a shard oscillating around the boundary
//!   does not flap. On entry the detector derives advisory
//!   [`EventKind::RebalanceAdvice`] from the *observed* docid traffic of
//!   the window: the hottest contiguous docid range covering about half
//!   the hot shard's observed hits, advised toward the shard with the
//!   lowest invoice share. Executing the advice is the caller's decision
//!   (`textjoin-text` turns it into a `MigrationPlan`).
//! - **SLO burn rate** ([`EventKind::SloAlert`]): deadline misses,
//!   circuit-breaker opens, and hedged reads are SLO-threatening events
//!   charged against a per-window budget. The alert fires only when both
//!   a fast (short) and a slow (long) trailing window burn above budget —
//!   the standard dual-window construction that ignores short blips while
//!   still catching slow sustained burns — and clears when either window
//!   recovers.
//! - **Cost drift** ([`EventKind::DriftAlert`]): every few windows the
//!   watchdog re-runs the least-squares fit of
//!   [`calibrate_trace`](crate::calibrate_trace) over a trailing window
//!   of chargeable events and compares each determined constant against
//!   the configured baseline; a component whose fit moves beyond the
//!   relative tolerance is flagged until it returns.
//! - **Misestimation** ([`EventKind::EstimateDrift`]): plan-quality
//!   samples ([`EventKind::EstimateSample`], emitted by EXPLAIN ANALYZE
//!   runs) are collected into a trailing window; the detector fires when
//!   the trailing p90 of the worse component Q-error or the mean regret
//!   share crosses its threshold, and names that component so the operator
//!   knows which knob to turn: a selectivity-dominated miss means the
//!   exported statistics are stale (re-run `export_stats`), a
//!   constants-dominated miss means the configured cost constants no
//!   longer match the server (re-run calibration).

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use crate::calibrate::calibrate_trace;
use crate::event::{Charge, Event, EventKind};
use crate::sink::Sink;

/// Attributes a global docid to the shard that currently owns it. The
/// monitor itself is layered below the text system and cannot know the
/// partition map; callers that want traffic attributed (required for
/// rebalance advice) inject the owner function, e.g.
/// `ShardedTextServer::owner_of`.
pub type OwnerFn = Rc<dyn Fn(u64) -> usize>;

/// Tuning for the windowed monitor. All thresholds are deterministic
/// constants; nothing here reads a clock or a RNG.
#[derive(Clone)]
pub struct MonitorConfig {
    /// Window width in simulated seconds. Events are bucketed by
    /// `floor(clock / window_secs)`.
    pub window_secs: f64,
    /// Skew detector: a shard enters the hot state when its share of the
    /// windowed invoice reaches this many parts-per-million.
    pub skew_hot_ppm: u64,
    /// Skew detector: a hot shard clears when its share falls to or below
    /// this (must be below `skew_hot_ppm` for hysteresis to bite).
    pub skew_clear_ppm: u64,
    /// Skew detector: windows with fewer net invocations than this are
    /// too quiet to judge and leave the hot states untouched.
    pub skew_min_invocations: i64,
    /// SLO monitor: trailing length of the fast window, in windows.
    pub slo_fast_windows: usize,
    /// SLO monitor: trailing length of the slow window, in windows.
    pub slo_slow_windows: usize,
    /// SLO monitor: budgeted SLO-threatening events per window. A burn
    /// rate of 1.0 consumes exactly this budget.
    pub slo_budget_per_window: f64,
    /// Drift watchdog: re-fit every this many windows.
    pub drift_every_windows: u64,
    /// Drift watchdog: trailing calibration buffer, in windows.
    pub drift_trailing_windows: usize,
    /// Drift watchdog: relative tolerance before a component is flagged.
    pub drift_tolerance: f64,
    /// Drift watchdog baseline `(c_i, c_p, c_s, c_l)`; `None` disables
    /// the watchdog (nothing to compare against).
    pub baseline: Option<(f64, f64, f64, f64)>,
    /// Misestimation detector: fires when the trailing p90 of the worse
    /// component Q-error (selectivity vs constants) reaches this value.
    pub est_p90_alert: f64,
    /// Misestimation detector: clears when the trailing p90 falls to or
    /// below this (must be below `est_p90_alert` for hysteresis).
    pub est_p90_clear: f64,
    /// Misestimation detector: fires when the trailing mean regret share
    /// (regret / chosen cost) reaches this value.
    pub est_regret_alert: f64,
    /// Misestimation detector: trailing windows with fewer plan-quality
    /// samples than this are too quiet to judge.
    pub est_min_samples: usize,
    /// Misestimation detector: trailing sample buffer, in windows.
    pub est_trailing_windows: usize,
    /// Smoothing factor of the per-call latency EWMA (weight of the
    /// newest observation).
    pub ewma_alpha: f64,
    /// Optional docid → shard attribution for traffic observed without a
    /// shard tag (see [`OwnerFn`]).
    pub owner: Option<OwnerFn>,
}

impl MonitorConfig {
    /// A config with the default detector tuning over `window_secs`-wide
    /// windows: skew hot at 45% / clear at 35% of the windowed invoice
    /// with at least 4 invocations, SLO burn over 3-fast/12-slow windows
    /// at 1 bad event per window, drift re-fit every 4 windows over an
    /// 8-window trail at 25% relative tolerance, and misestimation at a
    /// trailing p90 Q-error of 4 (clear at 2) or 25% mean regret share
    /// over an 8-window trail with at least 3 samples.
    pub fn new(window_secs: f64) -> Self {
        assert!(window_secs > 0.0, "window width must be positive");
        Self {
            window_secs,
            skew_hot_ppm: 450_000,
            skew_clear_ppm: 350_000,
            skew_min_invocations: 4,
            slo_fast_windows: 3,
            slo_slow_windows: 12,
            slo_budget_per_window: 1.0,
            drift_every_windows: 4,
            drift_trailing_windows: 8,
            drift_tolerance: 0.25,
            baseline: None,
            est_p90_alert: 4.0,
            est_p90_clear: 2.0,
            est_regret_alert: 0.25,
            est_min_samples: 3,
            est_trailing_windows: 8,
            ewma_alpha: 0.25,
            owner: None,
        }
    }

    /// Sets the skew thresholds (enter at `hot_ppm`, clear at
    /// `clear_ppm`).
    pub fn with_skew(mut self, hot_ppm: u64, clear_ppm: u64) -> Self {
        assert!(clear_ppm < hot_ppm, "hysteresis needs clear < hot");
        self.skew_hot_ppm = hot_ppm;
        self.skew_clear_ppm = clear_ppm;
        self
    }

    /// Sets the SLO dual-window lengths and per-window budget.
    pub fn with_slo(mut self, fast: usize, slow: usize, budget: f64) -> Self {
        assert!(fast >= 1 && slow >= fast, "need 1 <= fast <= slow");
        assert!(budget > 0.0, "budget must be positive");
        self.slo_fast_windows = fast;
        self.slo_slow_windows = slow;
        self.slo_budget_per_window = budget;
        self
    }

    /// Arms the drift watchdog against the given baseline constants.
    pub fn with_baseline(mut self, c_i: f64, c_p: f64, c_s: f64, c_l: f64) -> Self {
        self.baseline = Some((c_i, c_p, c_s, c_l));
        self
    }

    /// Sets the drift cadence, trailing depth, and relative tolerance.
    pub fn with_drift(mut self, every: u64, trailing: usize, tolerance: f64) -> Self {
        assert!(every >= 1 && trailing >= 1, "cadence and trail must be >= 1");
        assert!(tolerance > 0.0, "tolerance must be positive");
        self.drift_every_windows = every;
        self.drift_trailing_windows = trailing;
        self.drift_tolerance = tolerance;
        self
    }

    /// Sets the misestimation thresholds: alert at trailing p90 Q-error
    /// `p90_alert` (clear at `p90_clear`) or mean regret share
    /// `regret_alert`, judged over `trailing` windows holding at least
    /// `min_samples` plan-quality samples.
    pub fn with_estimates(
        mut self,
        p90_alert: f64,
        p90_clear: f64,
        regret_alert: f64,
        min_samples: usize,
        trailing: usize,
    ) -> Self {
        assert!(p90_clear < p90_alert, "hysteresis needs clear < alert");
        assert!(p90_clear >= 1.0, "q-error is never below 1");
        assert!(regret_alert > 0.0, "regret threshold must be positive");
        assert!(min_samples >= 1 && trailing >= 1, "need samples and trail >= 1");
        self.est_p90_alert = p90_alert;
        self.est_p90_clear = p90_clear;
        self.est_regret_alert = regret_alert;
        self.est_min_samples = min_samples;
        self.est_trailing_windows = trailing;
        self
    }

    /// Injects docid → shard attribution for untagged traffic.
    pub fn with_owner(mut self, owner: OwnerFn) -> Self {
        self.owner = Some(owner);
        self
    }
}

/// One shard's slice of a closed window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardWindow {
    /// Server calls routed to the shard (queries of any op).
    pub calls: u64,
    /// Net invoice of the window, by charge component (rebates subtract).
    pub invoice: Charge,
    /// Failover hops onto the shard's replicas.
    pub failovers: u64,
    /// Observed docid traffic: docid → hits this window.
    pub traffic: BTreeMap<u64, u64>,
}

/// One replica's slice of a closed window. Only the replica-addressed
/// events (failovers, hedges, cancellations) carry a replica index, so
/// that is what the per-replica series tracks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplicaWindow {
    /// Failover hops served by this replica.
    pub failovers: u64,
    /// Hedged reads dispatched to this replica.
    pub hedges: u64,
    /// Hedged legs cancelled on this replica.
    pub cancels: u64,
}

/// Everything the monitor retained about one closed window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowStats {
    /// 0-based window index: covers simulated seconds
    /// `[index × w, (index+1) × w)`.
    pub index: u64,
    /// Total server calls in the window.
    pub calls: u64,
    /// Net invoice of the window across all shards, by charge component.
    pub invoice: Charge,
    /// Per-shard series (only shards that saw traffic appear).
    pub per_shard: BTreeMap<usize, ShardWindow>,
    /// Per-(shard, replica) series for replica-addressed events.
    pub per_replica: BTreeMap<(usize, usize), ReplicaWindow>,
    /// Deadline misses observed.
    pub deadline_misses: u64,
    /// Circuit-breaker opens observed.
    pub circuit_opens: u64,
    /// Hedged reads dispatched.
    pub hedges: u64,
    /// Per-call simulated-latency EWMA as of the window close.
    pub latency_ewma: f64,
}

impl WindowStats {
    /// SLO-threatening events this window: deadline misses, breaker
    /// opens, and hedges.
    pub fn bad_events(&self) -> u64 {
        self.deadline_misses + self.circuit_opens + self.hedges
    }

    /// A shard's share of the windowed invoice, in parts-per-million.
    pub fn share_ppm(&self, shard: usize) -> u64 {
        let total: f64 = self
            .per_shard
            .values()
            .map(|s| s.invoice.total())
            .sum();
        if total <= 0.0 {
            return 0;
        }
        let share = self
            .per_shard
            .get(&shard)
            .map(|s| s.invoice.total())
            .unwrap_or(0.0);
        ((share / total) * 1_000_000.0).round() as u64
    }
}

/// Advisory migration derived from observed traffic: move the half-open
/// docid range `[lo, hi)` from `src` to `dst`. Advice only — the monitor
/// never executes anything; `textjoin-text` turns this into a
/// `MigrationPlan` for the migration engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Advice {
    /// Window the advice was derived from.
    pub window: u64,
    /// Hot source shard.
    pub src: usize,
    /// Advised destination shard (lowest invoice share in the window).
    pub dst: usize,
    /// Half-open docid range start.
    pub lo: u64,
    /// Half-open docid range end.
    pub hi: u64,
    /// Observed traffic hits inside `[lo, hi)` in the window.
    pub hits: u64,
}

/// One plan-quality observation, as carried by an `EstimateSample`. The
/// detector judges the component Q-errors (the blended plan `cost_q` can
/// hide a stale estimate behind a well-priced dominant term), so only
/// the components and the regret share are retained.
#[derive(Clone, Copy)]
struct EstSample {
    selectivity_q: f64,
    constants_q: f64,
    regret_share: f64,
}

/// Accumulator for the window currently being filled.
#[derive(Default)]
struct WindowAcc {
    calls: u64,
    invoice: Charge,
    per_shard: BTreeMap<usize, ShardWindow>,
    per_replica: BTreeMap<(usize, usize), ReplicaWindow>,
    deadline_misses: u64,
    circuit_opens: u64,
    hedges: u64,
    /// Chargeable events of the window, buffered for the drift trail.
    chargeable: Vec<Event>,
    /// Plan-quality samples of the window, buffered for the
    /// misestimation trail.
    est_samples: Vec<EstSample>,
}

struct MonState {
    /// Index of the window currently accumulating.
    current: u64,
    acc: WindowAcc,
    windows: Vec<WindowStats>,
    /// Skew hot-state per shard (absent == cold).
    hot_shards: BTreeMap<usize, bool>,
    /// Per-window bad-event counts, newest last, capped at the slow
    /// window length.
    bad_history: VecDeque<u64>,
    slo_firing: bool,
    /// Per-window chargeable events, newest last, capped at the drift
    /// trail length.
    trailing: VecDeque<Vec<Event>>,
    drift_flags: BTreeMap<&'static str, bool>,
    /// Per-window plan-quality samples, newest last, capped at the
    /// misestimation trail length.
    est_trailing: VecDeque<Vec<EstSample>>,
    est_firing: bool,
    alerts: Vec<Event>,
    alert_seq: u64,
    advice: Vec<Advice>,
    ewma: f64,
    ewma_primed: bool,
    started: bool,
    finished: bool,
}

impl Default for MonState {
    fn default() -> Self {
        Self {
            current: 0,
            acc: WindowAcc::default(),
            windows: Vec::new(),
            hot_shards: BTreeMap::new(),
            bad_history: VecDeque::new(),
            slo_firing: false,
            trailing: VecDeque::new(),
            drift_flags: BTreeMap::new(),
            est_trailing: VecDeque::new(),
            est_firing: false,
            alerts: Vec::new(),
            alert_seq: 0,
            advice: Vec::new(),
            ewma: 0.0,
            ewma_primed: false,
            started: false,
            finished: false,
        }
    }
}

/// The windowed health monitor. See the module docs for the design.
pub struct Monitor {
    cfg: MonitorConfig,
    state: RefCell<MonState>,
}

impl Monitor {
    /// A monitor with the given tuning, ready to attach as a [`Sink`].
    pub fn new(cfg: MonitorConfig) -> Self {
        Self {
            cfg,
            state: RefCell::new(MonState::default()),
        }
    }

    /// Offline replay: feeds a recorded (or JSONL-parsed) event stream
    /// through the same code path a live tee uses and closes the final
    /// window. Deterministic: replaying the trace of a monitored run
    /// reproduces that run's windows and alerts exactly.
    pub fn replay(cfg: MonitorConfig, events: &[Event]) -> Self {
        let mon = Self::new(cfg);
        for ev in events {
            mon.record(ev);
        }
        mon.finish();
        mon
    }

    /// Closes the window currently accumulating and runs the detectors
    /// over it. Call once after the run (or replay) completes; windows
    /// before the last close themselves as the clock crosses their
    /// boundary.
    pub fn finish(&self) {
        let mut st = self.state.borrow_mut();
        if st.started && !st.finished {
            self.close_window(&mut st);
            st.finished = true;
        }
    }

    /// The closed windows, oldest first.
    pub fn windows(&self) -> Vec<WindowStats> {
        self.state.borrow().windows.clone()
    }

    /// The detector alert stream: `SkewAlert`, `SloAlert`, `DriftAlert`,
    /// `EstimateDrift`, and `RebalanceAdvice` events with their own sequence numbers,
    /// stamped at the simulated-clock window boundary that closed them.
    /// Disjoint from the recorded trace by construction.
    pub fn alerts(&self) -> Vec<Event> {
        self.state.borrow().alerts.clone()
    }

    /// Advisory migrations derived so far, oldest first.
    pub fn advice(&self) -> Vec<Advice> {
        self.state.borrow().advice.clone()
    }

    /// Renders the deterministic per-window health table plus the alert
    /// log. Shared by the `monitor` bench binary and `explain --windows`.
    pub fn render_table(&self) -> String {
        let st = self.state.borrow();
        render_windows(self.cfg.window_secs, &st.windows, &st.alerts)
    }

    fn emit_alert(&self, st: &mut MonState, window: u64, kind: EventKind) {
        let seq = st.alert_seq;
        st.alert_seq += 1;
        st.alerts.push(Event {
            seq,
            clock: (window + 1) as f64 * self.cfg.window_secs,
            kind,
        });
    }

    /// Buckets one event into the current window, closing windows as the
    /// simulated clock crosses their boundaries.
    fn ingest(&self, st: &mut MonState, ev: &Event) {
        st.started = true;
        st.finished = false;
        let w = (ev.clock / self.cfg.window_secs).floor() as u64;
        while st.current < w {
            self.close_window(st);
        }
        let acc = &mut st.acc;
        match &ev.kind {
            EventKind::Call { shard, charge, .. } => {
                acc.calls += 1;
                acc.invoice.accumulate(charge);
                acc.chargeable.push(ev.clone());
                if let Some(s) = shard {
                    let sw = acc.per_shard.entry(*s).or_default();
                    sw.calls += 1;
                    sw.invoice.accumulate(charge);
                }
                let alpha = self.cfg.ewma_alpha;
                let sample = charge.total();
                st.ewma = if st.ewma_primed {
                    alpha * sample + (1.0 - alpha) * st.ewma
                } else {
                    st.ewma_primed = true;
                    sample
                };
            }
            EventKind::Rebate { shard, charge } => {
                acc.invoice.accumulate(charge);
                acc.chargeable.push(ev.clone());
                if let Some(s) = shard {
                    acc.per_shard.entry(*s).or_default().invoice.accumulate(charge);
                }
            }
            EventKind::Backoff { shard, charge, .. } => {
                acc.invoice.accumulate(charge);
                acc.chargeable.push(ev.clone());
                if let Some(s) = shard {
                    acc.per_shard.entry(*s).or_default().invoice.accumulate(charge);
                }
            }
            EventKind::Failover { shard, replica } => {
                acc.per_shard.entry(*shard).or_default().failovers += 1;
                acc.per_replica.entry((*shard, *replica)).or_default().failovers += 1;
            }
            EventKind::Hedge { shard, replica } => {
                acc.hedges += 1;
                acc.per_replica.entry((*shard, *replica)).or_default().hedges += 1;
            }
            EventKind::Cancel { shard, replica } => {
                acc.per_replica.entry((*shard, *replica)).or_default().cancels += 1;
            }
            EventKind::EstimateSample {
                selectivity_q,
                constants_q,
                regret_share,
                ..
            } => acc.est_samples.push(EstSample {
                selectivity_q: *selectivity_q,
                constants_q: *constants_q,
                regret_share: *regret_share,
            }),
            EventKind::DeadlineMiss { .. } => acc.deadline_misses += 1,
            EventKind::CircuitOpen { .. } => acc.circuit_opens += 1,
            EventKind::DocTraffic { shard, docs } => {
                for doc in docs {
                    let owner = shard.or_else(|| self.cfg.owner.as_ref().map(|f| f(*doc)));
                    if let Some(s) = owner {
                        *acc.per_shard
                            .entry(s)
                            .or_default()
                            .traffic
                            .entry(*doc)
                            .or_insert(0) += 1;
                    }
                }
            }
            _ => {}
        }
    }

    /// Closes window `st.current`: freezes its stats, runs the three
    /// detectors, and advances to the next window.
    fn close_window(&self, st: &mut MonState) {
        let acc = std::mem::take(&mut st.acc);
        let stats = WindowStats {
            index: st.current,
            calls: acc.calls,
            invoice: acc.invoice,
            per_shard: acc.per_shard,
            per_replica: acc.per_replica,
            deadline_misses: acc.deadline_misses,
            circuit_opens: acc.circuit_opens,
            hedges: acc.hedges,
            latency_ewma: st.ewma,
        };
        st.trailing.push_back(acc.chargeable);
        while st.trailing.len() > self.cfg.drift_trailing_windows {
            st.trailing.pop_front();
        }
        st.est_trailing.push_back(acc.est_samples);
        while st.est_trailing.len() > self.cfg.est_trailing_windows {
            st.est_trailing.pop_front();
        }
        self.detect_skew(st, &stats);
        self.detect_slo(st, &stats);
        self.detect_drift(st, stats.index);
        self.detect_estimates(st, stats.index);
        st.windows.push(stats);
        st.current += 1;
    }

    /// Load-skew detector with hysteresis; derives rebalance advice on
    /// each hot entry.
    fn detect_skew(&self, st: &mut MonState, w: &WindowStats) {
        if w.invoice.invocations < self.cfg.skew_min_invocations {
            return; // too quiet to judge
        }
        let total: f64 = w.per_shard.values().map(|s| s.invoice.total()).sum();
        if total <= 0.0 {
            return;
        }
        // Union of the shards seen this window and the shards currently
        // hot (a hot shard that went silent must be able to clear).
        let shards: Vec<usize> = w
            .per_shard
            .keys()
            .copied()
            .chain(st.hot_shards.keys().copied())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for shard in shards {
            let ppm = w.share_ppm(shard);
            let was_hot = st.hot_shards.get(&shard).copied().unwrap_or(false);
            if !was_hot && ppm >= self.cfg.skew_hot_ppm {
                st.hot_shards.insert(shard, true);
                self.emit_alert(
                    st,
                    w.index,
                    EventKind::SkewAlert {
                        window: w.index,
                        shard,
                        share_ppm: ppm,
                        hot: true,
                    },
                );
                self.advise(st, w, shard);
            } else if was_hot && ppm <= self.cfg.skew_clear_ppm {
                st.hot_shards.insert(shard, false);
                self.emit_alert(
                    st,
                    w.index,
                    EventKind::SkewAlert {
                        window: w.index,
                        shard,
                        share_ppm: ppm,
                        hot: false,
                    },
                );
            }
        }
    }

    /// Derives a traffic-based advisory migration for a newly hot shard:
    /// the hottest docid range covering about half the shard's observed
    /// hits, advised toward the coldest shard of the window.
    fn advise(&self, st: &mut MonState, w: &WindowStats, src: usize) {
        let Some(sw) = w.per_shard.get(&src) else { return };
        if sw.traffic.is_empty() {
            return; // no observed traffic to derive a range from
        }
        // Rank docids by observed hits (hits descending, docid ascending
        // for determinism) and take the hottest until they cover half the
        // shard's hits.
        let total_hits: u64 = sw.traffic.values().sum();
        let mut ranked: Vec<(u64, u64)> =
            sw.traffic.iter().map(|(&d, &h)| (d, h)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut covered = 0u64;
        let mut picked: Vec<u64> = Vec::new();
        for (doc, hits) in &ranked {
            picked.push(*doc);
            covered += hits;
            if covered * 2 >= total_hits {
                break;
            }
        }
        let lo = *picked.iter().min().expect("picked is non-empty");
        let hi = *picked.iter().max().expect("picked is non-empty") + 1;
        // All observed hits that actually fall inside the advised range
        // (it is contiguous, so it may cover more than the picked set).
        let hits: u64 = sw
            .traffic
            .iter()
            .filter(|(&d, _)| d >= lo && d < hi)
            .map(|(_, &h)| h)
            .sum();
        // Destination: the shard with the lowest invoice share this
        // window, excluding the source (BTreeMap order breaks ties by
        // the lowest shard index).
        let dst = w
            .per_shard
            .iter()
            .filter(|(&s, _)| s != src)
            .min_by(|a, b| {
                a.1.invoice
                    .total()
                    .partial_cmp(&b.1.invoice.total())
                    .expect("invoice totals are finite")
            })
            .map(|(&s, _)| s);
        let Some(dst) = dst else { return };
        st.advice.push(Advice {
            window: w.index,
            src,
            dst,
            lo,
            hi,
            hits,
        });
        self.emit_alert(
            st,
            w.index,
            EventKind::RebalanceAdvice {
                window: w.index,
                src,
                dst,
                lo,
                hi,
                hits,
            },
        );
    }

    /// Dual-window SLO burn-rate monitor.
    fn detect_slo(&self, st: &mut MonState, w: &WindowStats) {
        st.bad_history.push_back(w.bad_events());
        while st.bad_history.len() > self.cfg.slo_slow_windows {
            st.bad_history.pop_front();
        }
        let burn = |n: usize| -> f64 {
            let n = n.min(st.bad_history.len());
            let sum: u64 = st.bad_history.iter().rev().take(n).sum();
            sum as f64 / (self.cfg.slo_budget_per_window * n as f64)
        };
        let fast = burn(self.cfg.slo_fast_windows);
        let slow = burn(self.cfg.slo_slow_windows);
        let firing = fast >= 1.0 && slow >= 1.0;
        if firing != st.slo_firing {
            st.slo_firing = firing;
            self.emit_alert(
                st,
                w.index,
                EventKind::SloAlert {
                    window: w.index,
                    fast_ppm: (fast * 1_000_000.0).round() as u64,
                    slow_ppm: (slow * 1_000_000.0).round() as u64,
                    firing,
                },
            );
        }
    }

    /// Trailing-window cost-constant drift watchdog.
    fn detect_drift(&self, st: &mut MonState, window: u64) {
        let Some((b_i, b_p, b_s, b_l)) = self.cfg.baseline else { return };
        if !(window + 1).is_multiple_of(self.cfg.drift_every_windows) {
            return;
        }
        let events: Vec<Event> = st.trailing.iter().flatten().cloned().collect();
        let cal = calibrate_trace(&events);
        let checks = [
            (&cal.c_i, b_i),
            (&cal.c_p, b_p),
            (&cal.c_s, b_s),
            (&cal.c_l, b_l),
        ];
        for (fit, configured) in checks {
            if !fit.determined {
                continue; // no work observed: keep the configured value
            }
            let scale = configured.abs().max(f64::EPSILON);
            let drifted = (fit.fitted - configured).abs() > self.cfg.drift_tolerance * scale;
            let was = st.drift_flags.get(fit.name).copied().unwrap_or(false);
            if drifted != was {
                st.drift_flags.insert(fit.name, drifted);
                self.emit_alert(
                    st,
                    window,
                    EventKind::DriftAlert {
                        window,
                        component: fit.name,
                        configured,
                        fitted: fit.fitted,
                        drifted,
                    },
                );
            }
        }
    }

    /// Trailing-window misestimation detector over plan-quality samples.
    /// Fires (with hysteresis, edge-triggered) when the trailing p90 cost
    /// Q-error or the mean regret share crosses its threshold, naming the
    /// worse Q-error component — `selectivity` (exported stats are stale)
    /// or `constants` (configured cost constants no longer match the
    /// server).
    fn detect_estimates(&self, st: &mut MonState, window: u64) {
        let samples: Vec<EstSample> = st.est_trailing.iter().flatten().copied().collect();
        if samples.len() < self.cfg.est_min_samples {
            return; // too quiet to judge
        }
        let p90 = |f: fn(&EstSample) -> f64| -> f64 {
            let xs: Vec<f64> = samples.iter().map(f).collect();
            crate::quantile(&xs, 0.90)
        };
        let sel_q = p90(|s| s.selectivity_q);
        let con_q = p90(|s| s.constants_q);
        let regret_share =
            samples.iter().map(|s| s.regret_share).sum::<f64>() / samples.len() as f64;
        // Judge the worse *component* Q-error, not the blended plan cost:
        // a badly stale cardinality estimate can hide inside an accurate
        // total when a well-priced term dominates the plan, and it is the
        // component that tells the operator which knob to turn.
        let (component, p90_q) = if con_q > sel_q {
            ("constants", con_q)
        } else {
            ("selectivity", sel_q)
        };
        let firing = if st.est_firing {
            p90_q > self.cfg.est_p90_clear || regret_share >= self.cfg.est_regret_alert
        } else {
            p90_q >= self.cfg.est_p90_alert || regret_share >= self.cfg.est_regret_alert
        };
        if firing != st.est_firing {
            st.est_firing = firing;
            self.emit_alert(
                st,
                window,
                EventKind::EstimateDrift {
                    window,
                    component,
                    p90_q,
                    regret_share,
                    firing,
                },
            );
        }
    }
}

impl Sink for Monitor {
    fn record(&self, ev: &Event) {
        let mut st = self.state.borrow_mut();
        self.ingest(&mut st, ev);
    }
}

/// Renders the per-window health table and alert log for a monitor run.
/// Deterministic: fixed field order, fixed float formats, BTreeMap-sorted
/// shard columns.
pub fn render_windows(window_secs: f64, windows: &[WindowStats], alerts: &[Event]) -> String {
    let mut out = format!(
        "monitor: {} windows of {window_secs:.1}s simulated, {} alerts\n",
        windows.len(),
        alerts.len()
    );
    out.push_str(&format!(
        "{:>4} {:>6} {:>8} {:>9} {:>6} {:>8} {:>5} {:>5} {:>6} {:>8}  {}\n",
        "win", "calls", "postings", "invoice", "faults", "backoff", "miss", "open", "hedge", "ewma", "shares"
    ));
    for w in windows {
        let shares: Vec<String> = w
            .per_shard
            .keys()
            .map(|&s| format!("s{s}={:.1}%", w.share_ppm(s) as f64 / 10_000.0))
            .collect();
        out.push_str(&format!(
            "{:>4} {:>6} {:>8} {:>9.2} {:>6} {:>8.2} {:>5} {:>5} {:>6} {:>8.3}  {}\n",
            w.index,
            w.calls,
            w.invoice.postings,
            w.invoice.total(),
            w.invoice.faults,
            w.invoice.time_backoff,
            w.deadline_misses,
            w.circuit_opens,
            w.hedges,
            w.latency_ewma,
            if shares.is_empty() { "-".to_string() } else { shares.join(" ") }
        ));
    }
    if !alerts.is_empty() {
        out.push_str("alerts:\n");
        for ev in alerts {
            match &ev.kind {
                EventKind::SkewAlert {
                    window,
                    shard,
                    share_ppm,
                    hot,
                } => out.push_str(&format!(
                    "  [w{window}] skew {} shard{shard} share {:.1}%\n",
                    if *hot { "hot" } else { "clear" },
                    *share_ppm as f64 / 10_000.0
                )),
                EventKind::SloAlert {
                    window,
                    fast_ppm,
                    slow_ppm,
                    firing,
                } => out.push_str(&format!(
                    "  [w{window}] slo {} burn fast {:.2}x slow {:.2}x\n",
                    if *firing { "alert" } else { "clear" },
                    *fast_ppm as f64 / 1_000_000.0,
                    *slow_ppm as f64 / 1_000_000.0
                )),
                EventKind::DriftAlert {
                    window,
                    component,
                    configured,
                    fitted,
                    drifted,
                } => out.push_str(&format!(
                    "  [w{window}] drift {} {component}: configured {configured:.6} fitted {fitted:.6}\n",
                    if *drifted { "alert" } else { "clear" }
                )),
                EventKind::EstimateDrift {
                    window,
                    component,
                    p90_q,
                    regret_share,
                    firing,
                } => out.push_str(&format!(
                    "  [w{window}] estimates {} {component} p90 q {p90_q:.2} regret share {regret_share:.2} ({})\n",
                    if *firing { "alert" } else { "clear" },
                    if *component == "selectivity" {
                        "stats stale, re-export export_stats"
                    } else {
                        "constants drifted, run calibrate"
                    }
                )),
                EventKind::RebalanceAdvice {
                    window,
                    src,
                    dst,
                    lo,
                    hi,
                    hits,
                } => out.push_str(&format!(
                    "  [w{window}] advise shard{src} -> shard{dst} docs [{lo},{hi}) ({hits} hits)\n"
                )),
                other => out.push_str(&format!("  [seq{}] {:?}\n", ev.seq, other)),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(clock: f64, shard: Option<usize>, secs: f64) -> Event {
        Event {
            seq: 0,
            clock,
            kind: EventKind::Call {
                op: "search",
                shard,
                terms: 1,
                err: None,
                charge: Charge {
                    invocations: 1,
                    time_invocation: secs,
                    ..Charge::default()
                },
            },
        }
    }

    fn traffic(clock: f64, shard: Option<usize>, docs: Vec<u64>) -> Event {
        Event {
            seq: 0,
            clock,
            kind: EventKind::DocTraffic { shard, docs },
        }
    }

    #[test]
    fn events_bucket_into_windows_and_gaps_close_empty() {
        let mon = Monitor::replay(
            MonitorConfig::new(10.0),
            &[call(1.0, Some(0), 1.0), call(35.0, Some(1), 1.0)],
        );
        let ws = mon.windows();
        assert_eq!(ws.len(), 4, "windows 0..=3, gaps included");
        assert_eq!(ws[0].calls, 1);
        assert_eq!(ws[1].calls, 0, "gap window is empty");
        assert_eq!(ws[2].calls, 0);
        assert_eq!(ws[3].calls, 1);
        assert_eq!(ws[3].per_shard[&1].calls, 1);
    }

    #[test]
    fn skew_detector_is_edge_triggered_with_hysteresis() {
        let cfg = MonitorConfig::new(10.0)
            .with_skew(600_000, 400_000)
            .with_baseline(1.0, 1.0, 1.0, 1.0);
        let mut events = Vec::new();
        // Window 0: shard 0 takes 80% — enters hot.
        for i in 0..8 {
            events.push(call(0.5 + i as f64 * 0.001, Some(0), 0.001));
        }
        events.push(call(0.6, Some(1), 0.002));
        events.push(traffic(0.6, Some(0), vec![3, 3, 3, 9]));
        // Window 1: still 50% — inside the hysteresis band, stays hot.
        for i in 0..4 {
            events.push(call(10.5 + i as f64 * 0.001, Some(0), 0.001));
        }
        for i in 0..4 {
            events.push(call(10.6 + i as f64 * 0.001, Some(1), 0.001));
        }
        // Window 2: 12.5% — clears (the rest split so no other shard
        // crosses the hot threshold).
        events.push(call(20.5, Some(0), 0.001));
        for i in 0..4 {
            events.push(call(20.6 + i as f64 * 0.001, Some(1), 0.001));
        }
        for i in 0..3 {
            events.push(call(20.7 + i as f64 * 0.001, Some(2), 0.001));
        }
        let mon = Monitor::replay(cfg, &events);
        let skew: Vec<(u64, usize, bool)> = mon
            .alerts()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SkewAlert { window, shard, hot, .. } => Some((window, shard, hot)),
                _ => None,
            })
            .collect();
        assert_eq!(skew, vec![(0, 0, true), (2, 0, false)], "one enter, one clear");
        // The hot entry derived advice from the observed traffic.
        let advice = mon.advice();
        assert_eq!(advice.len(), 1);
        assert_eq!(advice[0].src, 0);
        assert_eq!(advice[0].dst, 1);
        assert_eq!((advice[0].lo, advice[0].hi), (3, 4), "hottest docid covers half");
        assert_eq!(advice[0].hits, 3);
    }

    #[test]
    fn owner_closure_attributes_untagged_traffic() {
        let cfg = MonitorConfig::new(10.0).with_owner(Rc::new(|doc| (doc % 2) as usize));
        let mon = Monitor::replay(cfg, &[traffic(1.0, None, vec![4, 5, 5, 6])]);
        let w = &mon.windows()[0];
        assert_eq!(w.per_shard[&0].traffic, BTreeMap::from([(4, 1), (6, 1)]));
        assert_eq!(w.per_shard[&1].traffic, BTreeMap::from([(5, 2)]));
    }

    #[test]
    fn slo_fires_only_when_both_windows_burn() {
        let cfg = MonitorConfig::new(10.0).with_slo(1, 3, 1.0);
        let miss = |clock: f64| Event {
            seq: 0,
            clock,
            kind: EventKind::DeadlineMiss { shard: Some(0) },
        };
        // Windows 0-1 quiet; a single bad window 2 trips the fast window
        // but not the slow average — no alert.
        let calm = Monitor::replay(
            MonitorConfig::new(10.0).with_slo(1, 3, 1.0),
            &[call(0.1, None, 0.1), call(10.1, None, 0.1), miss(20.1), call(25.0, None, 5.0)],
        );
        assert!(calm.alerts().iter().all(|e| !matches!(e.kind, EventKind::SloAlert { .. })));
        // After a quiet warm-up, sustained bad windows burn both windows
        // — fires once the slow average crosses, then clears when the
        // fast window recovers.
        let mut events = vec![
            call(1.0, None, 0.1),
            call(11.0, None, 0.1),
            call(21.0, None, 0.1),
        ];
        for w in [3u64, 4] {
            events.push(miss(w as f64 * 10.0 + 1.0));
            events.push(miss(w as f64 * 10.0 + 2.0));
        }
        events.push(call(51.0, None, 1.0));
        events.push(call(61.0, None, 1.0));
        let hot = Monitor::replay(cfg, &events);
        let slo: Vec<(u64, bool)> = hot
            .alerts()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SloAlert { window, firing, .. } => Some((window, firing)),
                _ => None,
            })
            .collect();
        assert_eq!(slo, vec![(4, true), (5, false)]);
    }

    #[test]
    fn drift_watchdog_flags_perturbation_and_stays_silent_when_clean() {
        let cfg = MonitorConfig::new(10.0)
            .with_baseline(1.0, 0.0, 0.0, 0.0)
            .with_drift(1, 4, 0.25);
        // Clean: calls priced exactly at the baseline c_i.
        let clean = Monitor::replay(
            cfg.clone(),
            &(0..8).map(|i| call(i as f64 * 5.0, Some(0), 1.0)).collect::<Vec<_>>(),
        );
        assert!(
            clean.alerts().iter().all(|e| !matches!(e.kind, EventKind::DriftAlert { .. })),
            "clean trace must not flag drift"
        );
        // Perturbed: the server starts charging 2× per invocation.
        let mut events: Vec<Event> = (0..4).map(|i| call(i as f64 * 2.0, Some(0), 1.0)).collect();
        let mut drifted = Vec::new();
        for i in 0..8 {
            let mut ev = call(40.0 + i as f64 * 5.0, Some(0), 2.0);
            if let EventKind::Call { charge, .. } = &mut ev.kind {
                charge.invocations = 1;
            }
            drifted.push(ev);
        }
        events.extend(drifted);
        let mon = Monitor::replay(cfg, &events);
        let flags: Vec<(&'static str, bool)> = mon
            .alerts()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::DriftAlert { component, drifted, .. } => Some((component, drifted)),
                _ => None,
            })
            .collect();
        assert!(
            flags.contains(&("c_i", true)),
            "2x pricing must flag c_i within the trailing window: {flags:?}"
        );
    }

    fn sample(clock: f64, cost_q: f64, sel_q: f64, con_q: f64, regret: f64) -> Event {
        Event {
            seq: 0,
            clock,
            kind: EventKind::EstimateSample {
                cost_q,
                selectivity_q: sel_q,
                constants_q: con_q,
                regret_share: regret,
            },
        }
    }

    #[test]
    fn estimate_detector_fires_on_q_error_and_clears_with_hysteresis() {
        let cfg = MonitorConfig::new(10.0).with_estimates(4.0, 2.0, 0.25, 3, 2);
        let mut events = Vec::new();
        // Window 0: badly misestimated plans, selectivity-dominated.
        for i in 0..3 {
            events.push(sample(0.5 + i as f64 * 0.1, 10.0, 10.0, 1.0, 0.0));
        }
        // Windows 1-2: perfect plans; w1 still holds w0 in the trail
        // (stays firing), w2 drops it (clears).
        for w in [1u64, 2] {
            for i in 0..3 {
                events.push(sample(w as f64 * 10.0 + 0.5 + i as f64 * 0.1, 1.0, 1.0, 1.0, 0.0));
            }
        }
        let mon = Monitor::replay(cfg, &events);
        let drifts: Vec<(u64, &'static str, bool)> = mon
            .alerts()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::EstimateDrift { window, component, firing, .. } => {
                    Some((window, component, firing))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            drifts,
            vec![(0, "selectivity", true), (2, "selectivity", false)],
            "one enter, one clear"
        );
        let table = mon.render_table();
        assert!(table.contains("stats stale, re-export export_stats"), "{table}");
    }

    #[test]
    fn estimate_detector_names_constants_and_watches_regret() {
        // Constants-dominated misses name the calibration knob.
        let cfg = MonitorConfig::new(10.0).with_estimates(4.0, 2.0, 0.25, 3, 2);
        let events: Vec<Event> =
            (0..3).map(|i| sample(0.5 + i as f64 * 0.1, 6.0, 1.0, 6.0, 0.0)).collect();
        let mon = Monitor::replay(cfg, &events);
        assert!(
            mon.alerts().iter().any(|e| matches!(
                e.kind,
                EventKind::EstimateDrift { component: "constants", firing: true, .. }
            )),
            "constants-dominated q-error must name constants"
        );
        assert!(
            mon.render_table().contains("constants drifted, run calibrate"),
            "{}",
            mon.render_table()
        );
        // Accurate estimates but costly wrong method choices: the regret
        // share alone trips the detector.
        let cfg = MonitorConfig::new(10.0).with_estimates(4.0, 2.0, 0.25, 3, 2);
        let events: Vec<Event> =
            (0..3).map(|i| sample(0.5 + i as f64 * 0.1, 1.0, 1.0, 1.0, 0.5)).collect();
        let mon = Monitor::replay(cfg, &events);
        assert!(
            mon.alerts().iter().any(|e| matches!(
                e.kind,
                EventKind::EstimateDrift { firing: true, .. }
            )),
            "high regret share must fire even with perfect q-error"
        );
    }

    #[test]
    fn estimate_detector_is_silent_below_min_samples_and_on_good_plans() {
        let cfg = MonitorConfig::new(10.0).with_estimates(4.0, 2.0, 0.25, 3, 2);
        // Two terrible samples: below the minimum, too quiet to judge.
        let quiet = Monitor::replay(
            cfg.clone(),
            &[sample(0.5, 100.0, 100.0, 1.0, 0.9), sample(0.6, 100.0, 100.0, 1.0, 0.9)],
        );
        assert!(quiet.alerts().is_empty(), "below min_samples stays silent");
        // Plenty of accurate samples: nothing to report.
        let good: Vec<Event> =
            (0..12).map(|i| sample(i as f64, 1.1, 1.1, 1.0, 0.01)).collect();
        let mon = Monitor::replay(cfg, &good);
        assert!(mon.alerts().is_empty(), "well-estimated plans never alert");
    }

    #[test]
    fn replay_and_render_are_deterministic() {
        let events: Vec<Event> = (0..20)
            .map(|i| call(i as f64 * 3.0, Some(i % 3), 1.0 + (i % 4) as f64))
            .collect();
        let cfg = || MonitorConfig::new(10.0).with_baseline(1.0, 1.0, 1.0, 1.0);
        let a = Monitor::replay(cfg(), &events).render_table();
        let b = Monitor::replay(cfg(), &events).render_table();
        assert_eq!(a, b, "byte-identical across replays");
        assert!(a.starts_with("monitor: "), "{a}");
    }

    #[test]
    fn finish_is_idempotent_and_alert_stream_is_separate() {
        let mon = Monitor::new(MonitorConfig::new(10.0));
        mon.record(&call(1.0, Some(0), 1.0));
        mon.finish();
        mon.finish();
        assert_eq!(mon.windows().len(), 1);
        // Alert events have their own dense sequence numbers.
        for (i, ev) in mon.alerts().iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
        }
    }
}
