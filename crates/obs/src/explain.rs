//! Trace replay: renders a recorded event stream as an indented span tree
//! with per-phase cost rollups. Backs the `explain` bench binary.

use std::collections::BTreeMap;

use crate::event::{Charge, Event, EventKind};

#[derive(Default)]
struct Node {
    label: String,
    t0: f64,
    t1: f64,
    direct: Charge,
    ok_calls: BTreeMap<&'static str, (u64, Charge)>,
    items: Vec<Item>,
}

enum Item {
    Child(Node),
    Line(String),
}

fn shard_tag(shard: Option<usize>) -> String {
    match shard {
        Some(i) => format!("@shard{i}"),
        None => String::new(),
    }
}

/// Compact human summary of a charge: only the non-zero components.
fn brief(c: &Charge) -> String {
    let mut parts = Vec::new();
    if c.invocations != 0 {
        parts.push(format!("inv {}", c.invocations));
    }
    if c.rejected != 0 {
        parts.push(format!("rej {}", c.rejected));
    }
    if c.postings != 0 {
        parts.push(format!("post {}", c.postings));
    }
    if c.docs_short != 0 || c.docs_long != 0 {
        parts.push(format!("xmit {}s/{}l", c.docs_short, c.docs_long));
    }
    if c.faults != 0 {
        parts.push(format!("faults {}", c.faults));
    }
    if c.retries != 0 {
        parts.push(format!("retries {}", c.retries));
    }
    if c.time_backoff != 0.0 {
        parts.push(format!("backoff {:.2}s", c.time_backoff));
    }
    if parts.is_empty() {
        "free".to_string()
    } else {
        parts.join(", ")
    }
}

impl Node {
    fn inclusive(&self) -> Charge {
        let mut total = self.direct;
        for item in &self.items {
            if let Item::Child(ch) = item {
                total.accumulate(&ch.inclusive());
            }
        }
        total
    }

    fn absorb(&mut self, ev: &Event) {
        if let Some(c) = ev.kind.charge() {
            self.direct.accumulate(c);
        }
        match &ev.kind {
            EventKind::Call {
                op,
                shard,
                err: Some(e),
                charge,
                ..
            } => self.items.push(Item::Line(format!(
                "! {op}{} failed: {e} ({})",
                shard_tag(*shard),
                brief(charge)
            ))),
            EventKind::Call {
                op,
                err: None,
                charge,
                ..
            } => {
                let slot = self.ok_calls.entry(op).or_insert((0, Charge::default()));
                slot.0 += 1;
                slot.1.accumulate(charge);
            }
            EventKind::Backoff { shard, seconds, .. } => self.items.push(Item::Line(format!(
                "~ backoff{} {seconds:.2}s",
                shard_tag(*shard)
            ))),
            EventKind::Retry { shard, attempt } => self.items.push(Item::Line(format!(
                "~ retry{} attempt {attempt}",
                shard_tag(*shard)
            ))),
            EventKind::Rebate { shard, charge } => self.items.push(Item::Line(format!(
                "- batch rebate{}: {}",
                shard_tag(*shard),
                brief(charge)
            ))),
            EventKind::Failover { shard, replica } => self.items.push(Item::Line(format!(
                "> failover@shard{shard} -> replica {replica}"
            ))),
            EventKind::CircuitOpen { shard, rate } => self.items.push(Item::Line(format!(
                "x circuit open@shard{shard} (ewma {rate}/1024)"
            ))),
            EventKind::CircuitClose { shard, rate } => self.items.push(Item::Line(format!(
                "o circuit close@shard{shard} (ewma {rate}/1024)"
            ))),
            EventKind::Hedge { shard, replica } => self.items.push(Item::Line(format!(
                "+ hedge@shard{shard} -> replica {replica}"
            ))),
            EventKind::Cancel { shard, replica } => self.items.push(Item::Line(format!(
                "x cancel@shard{shard} replica {replica}"
            ))),
            EventKind::DeadlineMiss { shard } => self.items.push(Item::Line(format!(
                "! deadline miss{}",
                shard_tag(*shard)
            ))),
            EventKind::MigrationBegin { moves, docs, epoch } => {
                self.items.push(Item::Line(format!(
                    "# migration begin: {moves} moves, {docs} docs (epoch {epoch})"
                )));
            }
            EventKind::MigrationBatch {
                mv,
                src,
                dst,
                docs,
                postings,
                high_water,
                epoch,
            } => {
                self.items.push(Item::Line(format!(
                    "# migration batch mv{mv} shard{src} -> shard{dst}: {docs} docs, {postings} postings, high-water {high_water} (epoch {epoch})"
                )));
            }
            EventKind::MigrationResume { mv, src, dst, docs, epoch } => {
                self.items.push(Item::Line(format!(
                    "# migration resume mv{mv} shard{src} -> shard{dst}: {docs} docs in flight (epoch {epoch})"
                )));
            }
            EventKind::MigrationAbort {
                mv,
                src,
                dst,
                reverted,
                epoch,
            } => {
                self.items.push(Item::Line(format!(
                    "! migration abort mv{mv} shard{src} -> shard{dst}: {reverted} docs reverted (epoch {epoch})"
                )));
            }
            EventKind::RoutingStale {
                from_epoch,
                to_epoch,
                shards,
            } => {
                let list: Vec<String> = shards.iter().map(|s| format!("shard{s}")).collect();
                self.items.push(Item::Line(format!(
                    "~ routing stale: epoch {from_epoch} -> {to_epoch}, re-scatter [{}]",
                    list.join(" ")
                )));
            }
            EventKind::DocTraffic { shard, docs } => self.items.push(Item::Line(format!(
                "· traffic{}: {} docs",
                shard_tag(*shard),
                docs.len()
            ))),
            EventKind::SkewAlert {
                window,
                shard,
                share_ppm,
                hot,
            } => self.items.push(Item::Line(format!(
                "{} skew {}@shard{shard} window {window}: share {:.1}%",
                if *hot { "!" } else { "o" },
                if *hot { "hot" } else { "clear" },
                *share_ppm as f64 / 10_000.0
            ))),
            EventKind::SloAlert {
                window,
                fast_ppm,
                slow_ppm,
                firing,
            } => self.items.push(Item::Line(format!(
                "{} slo {} window {window}: burn fast {:.2}x slow {:.2}x",
                if *firing { "!" } else { "o" },
                if *firing { "alert" } else { "clear" },
                *fast_ppm as f64 / 1_000_000.0,
                *slow_ppm as f64 / 1_000_000.0
            ))),
            EventKind::DriftAlert {
                window,
                component,
                configured,
                fitted,
                drifted,
            } => self.items.push(Item::Line(format!(
                "{} drift {} {component} window {window}: configured {configured} fitted {fitted}",
                if *drifted { "!" } else { "o" },
                if *drifted { "alert" } else { "clear" },
            ))),
            EventKind::EstimateSample {
                cost_q,
                selectivity_q,
                constants_q,
                regret_share,
            } => self.items.push(Item::Line(format!(
                "? plan quality: cost q {cost_q:.2} (sel {selectivity_q:.2} const {constants_q:.2}) regret share {regret_share:.2}"
            ))),
            EventKind::EstimateDrift {
                window,
                component,
                p90_q,
                regret_share,
                firing,
            } => self.items.push(Item::Line(format!(
                "{} estimates {} {component} window {window}: p90 q {p90_q:.2} regret share {regret_share:.2}",
                if *firing { "!" } else { "o" },
                if *firing { "alert" } else { "clear" },
            ))),
            EventKind::RebalanceAdvice {
                window,
                src,
                dst,
                lo,
                hi,
                hits,
            } => self.items.push(Item::Line(format!(
                "# advise rebalance window {window}: shard{src} -> shard{dst} docs [{lo},{hi}) ({hits} hits observed)"
            ))),
            EventKind::Admit {
                tenant,
                arrival,
                est_cost,
            } => self.items.push(Item::Line(format!(
                "> admit tenant{tenant} req#{arrival}: est {est_cost:.2}s"
            ))),
            EventKind::Shed {
                tenant,
                arrival,
                queued,
            } => self.items.push(Item::Line(format!(
                "! shed tenant{tenant} req#{arrival} ({queued} still queued)"
            ))),
            EventKind::BudgetExhausted {
                tenant,
                arrival,
                spent_ms,
                remaining_ms,
            } => self.items.push(Item::Line(format!(
                "! budget exhausted tenant{tenant} req#{arrival}: spent {:.1}s of {:.1}s remaining",
                *spent_ms as f64 / 1000.0,
                *remaining_ms as f64 / 1000.0
            ))),
            EventKind::CacheHit { scope, epoch } => self.items.push(Item::Line(format!(
                "= cache hit [{scope}] epoch {epoch}"
            ))),
            EventKind::Planner(p) => {
                let total = p.invocation + p.processing + p.transmission + p.rtp;
                self.items.push(Item::Line(format!(
                    "? candidate {}{} est {total:.2}s (inv {:.2} proc {:.2} xmit {:.2} rtp {:.2}; eff c_i {:.2})",
                    p.label,
                    if p.chosen { " [chosen]" } else { "" },
                    p.invocation,
                    p.processing,
                    p.transmission,
                    p.rtp,
                    p.effective_c_i
                )));
            }
            _ => {}
        }
    }

    fn render(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let incl = self.inclusive();
        out.push_str(&format!(
            "{pad}{}  [{:.3}s → {:.3}s]  Σ {:.3}s ({})\n",
            self.label,
            self.t0,
            self.t1,
            incl.total(),
            brief(&incl)
        ));
        for (op, (n, c)) in &self.ok_calls {
            out.push_str(&format!(
                "{pad}  • {n}× {op}: {} = {:.3}s\n",
                brief(c),
                c.total()
            ));
        }
        for item in &self.items {
            match item {
                Item::Line(l) => out.push_str(&format!("{pad}  {l}\n")),
                Item::Child(ch) => ch.render(depth + 1, out),
            }
        }
    }
}

/// Replays `events` into an indented span tree. Events outside any span
/// are attributed to a synthetic `(trace)` root; per-span rollups are
/// inclusive of children.
pub fn render(events: &[Event]) -> String {
    let final_clock = events.last().map(|e| e.clock).unwrap_or(0.0);
    let mut root = Node {
        label: "(trace)".to_string(),
        t0: 0.0,
        t1: final_clock,
        ..Node::default()
    };
    let mut stack: Vec<Node> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::SpanBegin { label, .. } => stack.push(Node {
                label: label.clone(),
                t0: ev.clock,
                t1: ev.clock,
                ..Node::default()
            }),
            EventKind::SpanEnd { .. } => {
                if let Some(mut done) = stack.pop() {
                    done.t1 = ev.clock;
                    match stack.last_mut() {
                        Some(parent) => parent.items.push(Item::Child(done)),
                        None => root.items.push(Item::Child(done)),
                    }
                }
            }
            _ => stack
                .last_mut()
                .unwrap_or(&mut root)
                .absorb(ev),
        }
    }
    // A truncated trace may leave spans open; attach them unclosed.
    while let Some(mut done) = stack.pop() {
        done.t1 = final_clock;
        done.label.push_str(" (unclosed)");
        match stack.last_mut() {
            Some(parent) => parent.items.push(Item::Child(done)),
            None => root.items.push(Item::Child(done)),
        }
    }
    let mut out = format!("trace: {} events, clock 0s → {final_clock:.3}s\n", events.len());
    root.render(0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::sink::RingSink;
    use std::rc::Rc;

    #[test]
    fn renders_nested_spans_with_rollups() {
        let ring = Rc::new(RingSink::unbounded());
        let rec = Recorder::new(ring.clone());
        {
            let _m = rec.span("RTP");
            {
                let _p = rec.span("selection-search");
                rec.emit(EventKind::Call {
                    op: "search",
                    shard: None,
                    terms: 1,
                    err: None,
                    charge: Charge {
                        invocations: 1,
                        time_invocation: 3.0,
                        ..Charge::default()
                    },
                });
            }
        }
        let text = render(&ring.events());
        assert!(text.contains("RTP"), "{text}");
        assert!(text.contains("selection-search"), "{text}");
        assert!(text.contains("1× search"), "{text}");
        // The method span's inclusive rollup covers the nested call.
        assert!(text.contains("Σ 3.000s"), "{text}");
    }

    #[test]
    fn renders_failover_and_breaker_lines() {
        let ring = Rc::new(RingSink::unbounded());
        let rec = Recorder::new(ring.clone());
        {
            let _g = rec.span("gather/shard2");
            rec.emit(EventKind::CircuitOpen { shard: 2, rate: 801 });
            rec.emit(EventKind::Failover { shard: 2, replica: 1 });
            rec.emit(EventKind::CircuitClose { shard: 2, rate: 112 });
        }
        let text = render(&ring.events());
        assert!(text.contains("> failover@shard2 -> replica 1"), "{text}");
        assert!(text.contains("x circuit open@shard2 (ewma 801/1024)"), "{text}");
        assert!(text.contains("o circuit close@shard2 (ewma 112/1024)"), "{text}");
    }

    #[test]
    fn unclosed_span_is_flagged() {
        let ring = Rc::new(RingSink::unbounded());
        let rec = Recorder::new(ring.clone());
        let guard = rec.span("gather");
        let events = ring.events();
        let text = render(&events);
        assert!(text.contains("gather (unclosed)"), "{text}");
        drop(guard);
    }
}
