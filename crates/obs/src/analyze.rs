//! Plan-quality analysis: estimated-vs-actual reconciliation (EXPLAIN
//! ANALYZE).
//!
//! The planner already *emits* its estimates (`Planner` events) and the
//! executor already *books* its actuals (`Call` charges), but nothing
//! reconciles the two — so a trace says how much a plan spent, never how
//! good the optimizer's prediction was. This module closes that loop:
//! the planner side describes each plan node's estimated cost vector and
//! cardinalities as a [`NodeEstimate`], the executor attributes actual
//! charge deltas and row/posting counts back to the same node ids as
//! [`NodeActual`]s, and [`PlanQuality`] pairs them into per-node and
//! per-component Q-errors with a deterministic rendering.
//!
//! Everything here is charge-free arithmetic over numbers the ledger
//! already booked; building or rendering a [`PlanQuality`] never touches
//! a server.

use std::fmt::Write as _;

/// The Q-error of an estimate against an actual: `max(est/act, act/est)`,
/// the standard symmetric multiplicative error. Both (near) zero is a
/// perfect estimate (`1.0`); exactly one zero is an unbounded miss
/// (`f64::INFINITY`).
pub fn q_error(est: f64, act: f64) -> f64 {
    let est = est.max(0.0);
    let act = act.max(0.0);
    let zero = 1e-12;
    match (est <= zero, act <= zero) {
        (true, true) => 1.0,
        (true, false) | (false, true) => f64::INFINITY,
        (false, false) => (est / act).max(act / est),
    }
}

/// Deterministic nearest-rank quantile (`q` in `[0, 1]`) over a sample.
/// Empty input yields `0.0`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One estimated or actual cost vector, component by component. The
/// components mirror the paper's formulas: invocation, posting
/// processing, transmission, and relational text processing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostVector {
    /// Invocation cost (simulated seconds).
    pub invocation: f64,
    /// Posting-processing cost.
    pub processing: f64,
    /// Transmission cost (both forms).
    pub transmission: f64,
    /// Relational text-processing cost (`c_a` × comparisons).
    pub rtp: f64,
}

impl CostVector {
    /// Total simulated seconds across all components.
    pub fn total(&self) -> f64 {
        self.invocation + self.processing + self.transmission + self.rtp
    }

    /// Component-wise sum, for plan-level rollups.
    pub fn accumulate(&mut self, other: &CostVector) {
        self.invocation += other.invocation;
        self.processing += other.processing;
        self.transmission += other.transmission;
        self.rtp += other.rtp;
    }
}

/// The planner's estimate for one plan node, keyed by the node's
/// pre-order id (parent before children, inputs left to right — the
/// executor assigns actuals under the identical walk).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeEstimate {
    /// Pre-order node id within the plan.
    pub id: usize,
    /// Tree depth, for rendering indentation.
    pub depth: usize,
    /// Display label (e.g. `text-join[TS]`, `probe{name}`, `scan student`).
    pub label: String,
    /// Estimated output rows of the node.
    pub rows: f64,
    /// Estimated postings the node's searches process (`0` for purely
    /// relational nodes).
    pub postings: f64,
    /// Estimated cost vector of the node's own work (children excluded).
    pub cost: CostVector,
}

/// What the executor actually measured for one plan node: the exclusive
/// charge delta (children subtracted) and the actual counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeActual {
    /// Actual output rows of the node.
    pub rows: f64,
    /// Actual postings charged to the node's own work.
    pub postings: f64,
    /// Actual cost vector of the node's own work (children excluded).
    pub cost: CostVector,
}

/// One reconciled node: the estimate, the actual, and their Q-errors.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeQuality {
    /// The planner's estimate.
    pub est: NodeEstimate,
    /// The executor's measurement.
    pub act: NodeActual,
    /// Q-error of the node's output cardinality.
    pub rows_q: f64,
    /// Q-error of the node's own total cost.
    pub cost_q: f64,
}

/// The deterministic estimated-vs-actual summary for one executed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanQuality {
    /// Per-node reconciliation, pre-order.
    pub nodes: Vec<NodeQuality>,
    /// Plan-total estimated cost vector (Σ node estimates).
    pub est_total: CostVector,
    /// Plan-total actual cost vector (Σ node actuals).
    pub act_total: CostVector,
    /// Q-error of the plan's total cost.
    pub cost_q: f64,
    /// Q-error of the root's output cardinality.
    pub rows_q: f64,
    /// Q-error of the plan-total postings count.
    pub postings_q: f64,
}

impl PlanQuality {
    /// Pairs estimates with actuals by node id. `actuals[i]` must be the
    /// measurement for the node with pre-order id `i`; nodes the executor
    /// skipped (e.g. a probe dropped under pressure) default to zero
    /// actuals and show up as unbounded misses rather than vanishing.
    pub fn new(estimates: Vec<NodeEstimate>, actuals: &[NodeActual]) -> Self {
        let mut est_total = CostVector::default();
        let mut act_total = CostVector::default();
        let mut est_postings = 0.0;
        let mut act_postings = 0.0;
        let mut nodes = Vec::with_capacity(estimates.len());
        for est in estimates {
            let act = actuals.get(est.id).copied().unwrap_or_default();
            est_total.accumulate(&est.cost);
            act_total.accumulate(&act.cost);
            est_postings += est.postings;
            act_postings += act.postings;
            let rows_q = q_error(est.rows, act.rows);
            let cost_q = q_error(est.cost.total(), act.cost.total());
            nodes.push(NodeQuality {
                est,
                act,
                rows_q,
                cost_q,
            });
        }
        let rows_q = nodes
            .first()
            .map(|n| q_error(n.est.rows, n.act.rows))
            .unwrap_or(1.0);
        let cost_q = q_error(est_total.total(), act_total.total());
        let postings_q = q_error(est_postings, act_postings);
        Self {
            nodes,
            est_total,
            act_total,
            cost_q,
            rows_q,
            postings_q,
        }
    }

    /// Per-component `(name, estimated, actual, q_error)` rollup over the
    /// whole plan, fixed order.
    pub fn components(&self) -> [(&'static str, f64, f64, f64); 4] {
        let e = &self.est_total;
        let a = &self.act_total;
        [
            ("inv", e.invocation, a.invocation, q_error(e.invocation, a.invocation)),
            ("proc", e.processing, a.processing, q_error(e.processing, a.processing)),
            ("xmit", e.transmission, a.transmission, q_error(e.transmission, a.transmission)),
            ("rtp", e.rtp, a.rtp, q_error(e.rtp, a.rtp)),
        ]
    }

    /// The estimated-vs-actual span tree, byte-deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan quality: cost q {:.2} (est {:.2}s act {:.2}s), rows q {:.2}, postings q {:.2}",
            self.cost_q,
            self.est_total.total(),
            self.act_total.total(),
            self.rows_q,
            self.postings_q
        );
        let comps: Vec<String> = self
            .components()
            .iter()
            .map(|(name, e, a, q)| format!("{name} est {e:.2} act {a:.2} q {q:.2}"))
            .collect();
        let _ = writeln!(out, "  components: {}", comps.join(" | "));
        for n in &self.nodes {
            let indent = "  ".repeat(n.est.depth + 1);
            let _ = writeln!(
                out,
                "{indent}[{}] {} rows est {:.1} act {:.1} (q {:.2}) cost est {:.3}s act {:.3}s (q {:.2})",
                n.est.id,
                n.est.label,
                n.est.rows,
                n.act.rows,
                n.rows_q,
                n.est.cost.total(),
                n.act.cost.total(),
                n.cost_q
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_handles_zeroes() {
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(2.0, 0.0), f64::INFINITY);
        assert_eq!(q_error(0.0, 2.0), f64::INFINITY);
        assert!((q_error(2.0, 8.0) - 4.0).abs() < 1e-12);
        assert!((q_error(8.0, 2.0) - 4.0).abs() < 1e-12);
        assert_eq!(q_error(5.0, 5.0), 1.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        assert_eq!(quantile(&[], 0.9), 0.0);
        assert_eq!(quantile(&[3.0], 0.9), 3.0);
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.9), 9.0);
        assert_eq!(quantile(&v, 0.5), 5.0);
        assert_eq!(quantile(&v, 1.0), 10.0);
    }

    fn est(id: usize, depth: usize, rows: f64, inv: f64) -> NodeEstimate {
        NodeEstimate {
            id,
            depth,
            label: format!("node{id}"),
            rows,
            postings: 10.0,
            cost: CostVector {
                invocation: inv,
                ..CostVector::default()
            },
        }
    }

    #[test]
    fn plan_quality_pairs_by_id_and_rolls_up() {
        let estimates = vec![est(0, 0, 4.0, 6.0), est(1, 1, 8.0, 3.0)];
        let actuals = vec![
            NodeActual {
                rows: 2.0,
                postings: 10.0,
                cost: CostVector {
                    invocation: 3.0,
                    ..CostVector::default()
                },
            },
            NodeActual {
                rows: 8.0,
                postings: 30.0,
                cost: CostVector {
                    invocation: 3.0,
                    ..CostVector::default()
                },
            },
        ];
        let pq = PlanQuality::new(estimates, &actuals);
        assert_eq!(pq.nodes.len(), 2);
        assert!((pq.rows_q - 2.0).abs() < 1e-12, "root rows 4 vs 2");
        assert!((pq.cost_q - 1.5).abs() < 1e-12, "total 9 vs 6");
        assert!((pq.postings_q - 2.0).abs() < 1e-12, "postings 20 vs 40");
        assert_eq!(pq.nodes[1].rows_q, 1.0);
        let rendered = pq.render();
        assert!(rendered.contains("plan quality: cost q 1.50"));
        assert!(rendered.contains("[0] node0"));
        assert_eq!(rendered, pq.render(), "render is deterministic");
    }

    #[test]
    fn missing_actual_is_an_unbounded_miss_not_a_silent_drop() {
        let pq = PlanQuality::new(vec![est(0, 0, 4.0, 6.0)], &[]);
        assert_eq!(pq.nodes.len(), 1);
        assert_eq!(pq.nodes[0].cost_q, f64::INFINITY);
    }
}
