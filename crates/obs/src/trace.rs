//! Reading JSONL traces back into [`Event`]s — the inverse of
//! [`Event::to_jsonl`].
//!
//! The parser is a small hand-rolled JSON reader (this crate is
//! dependency-free by design) specialised to the recorder's line format:
//! one flat object per line, with at most one nested `charge`/`est`
//! object and one `probe_cols` array. Numbers keep their source text
//! until a field asks for an integer or a float, so shortest-roundtrip
//! serialized floats parse back to the exact bits that were written and a
//! parse→serialize round trip is byte-identical.

use crate::event::{Charge, Event, EventKind, PlannerChoice};

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// A parsed JSON value. Numbers hold their raw text so integer fields
/// never round-trip through `f64`.
#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, got as char
            )),
            None => Err(format!("expected '{}', found end of line", b as char)),
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(JVal::Null),
            Some(b't') if self.eat_literal("true") => Ok(JVal::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JVal::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JVal::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'/') => out.push('/'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err("empty number".to_string());
        }
        Ok(JVal::Num(text.to_string()))
    }
}

struct Fields<'a> {
    fields: &'a [(String, JVal)],
}

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Result<&'a JVal, String> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field \"{key}\""))
    }

    fn i64(&self, key: &str) -> Result<i64, String> {
        match self.get(key)? {
            JVal::Num(n) => n.parse().map_err(|_| format!("\"{key}\" is not an integer")),
            _ => Err(format!("\"{key}\" is not a number")),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            JVal::Num(n) => n.parse().map_err(|_| format!("\"{key}\" is not a u64")),
            _ => Err(format!("\"{key}\" is not a number")),
        }
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            JVal::Num(n) => n.parse().map_err(|_| format!("\"{key}\" is not a float")),
            _ => Err(format!("\"{key}\" is not a number")),
        }
    }

    fn str(&self, key: &str) -> Result<&'a str, String> {
        match self.get(key)? {
            JVal::Str(s) => Ok(s),
            _ => Err(format!("\"{key}\" is not a string")),
        }
    }

    fn bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            JVal::Bool(b) => Ok(*b),
            _ => Err(format!("\"{key}\" is not a bool")),
        }
    }

    fn opt_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key)? {
            JVal::Null => Ok(None),
            JVal::Num(n) => n
                .parse()
                .map(Some)
                .map_err(|_| format!("\"{key}\" is not a u64")),
            _ => Err(format!("\"{key}\" is not a number or null")),
        }
    }

    fn opt_str(&self, key: &str) -> Result<Option<&'a str>, String> {
        match self.get(key)? {
            JVal::Null => Ok(None),
            JVal::Str(s) => Ok(Some(s)),
            _ => Err(format!("\"{key}\" is not a string or null")),
        }
    }

    fn obj(&self, key: &str) -> Result<Fields<'a>, String> {
        match self.get(key)? {
            JVal::Obj(fields) => Ok(Fields { fields }),
            _ => Err(format!("\"{key}\" is not an object")),
        }
    }
}

fn shard_of(f: &Fields<'_>) -> Result<Option<usize>, String> {
    Ok(f.opt_u64("shard")?.map(|v| v as usize))
}

fn charge_of(f: &Fields<'_>) -> Result<Charge, String> {
    let c = f.obj("charge")?;
    Ok(Charge {
        invocations: c.i64("inv")?,
        rejected: c.i64("rej")?,
        postings: c.i64("post")?,
        docs_short: c.i64("short")?,
        docs_long: c.i64("long")?,
        time_invocation: c.f64("t_inv")?,
        time_processing: c.f64("t_proc")?,
        time_transmission: c.f64("t_xmit")?,
        faults: c.i64("faults")?,
        retries: c.i64("retries")?,
        time_backoff: c.f64("t_backoff")?,
    })
}

/// Call events carry a `&'static str` operation name; the serialized name
/// must map back to the interned one the server would have used.
fn op_of(name: &str) -> Result<&'static str, String> {
    match name {
        "search" => Ok("search"),
        "probe" => Ok("probe"),
        "batch" => Ok("batch"),
        "retrieve" => Ok("retrieve"),
        "xfer.out" => Ok("xfer.out"),
        "xfer.in" => Ok("xfer.in"),
        other => Err(format!("unknown call op \"{other}\"")),
    }
}

/// Drift alerts carry a `&'static str` component name; the serialized
/// name must map back to the interned one the watchdog would have used.
fn component_of(name: &str) -> Result<&'static str, String> {
    match name {
        "c_i" => Ok("c_i"),
        "c_p" => Ok("c_p"),
        "c_s" => Ok("c_s"),
        "c_l" => Ok("c_l"),
        other => Err(format!("unknown drift component \"{other}\"")),
    }
}

/// Estimate-drift alerts carry a `&'static str` component name; the
/// serialized name maps back to the interned one the detector uses.
fn quality_component_of(name: &str) -> Result<&'static str, String> {
    match name {
        "selectivity" => Ok("selectivity"),
        "constants" => Ok("constants"),
        other => Err(format!("unknown estimate component \"{other}\"")),
    }
}

/// Cache-hit events carry a `&'static str` scope; the serialized name is
/// interned back the same way as call ops.
fn cache_scope_of(name: &str) -> Result<&'static str, String> {
    match name {
        "probe" => Ok("probe"),
        "plan" => Ok("plan"),
        other => Err(format!("unknown cache scope \"{other}\"")),
    }
}

fn u64_array(f: &Fields<'_>, key: &str) -> Result<Vec<u64>, String> {
    match f.get(key)? {
        JVal::Arr(items) => items
            .iter()
            .map(|v| match v {
                JVal::Num(n) => n
                    .parse::<u64>()
                    .map_err(|_| format!("bad entry in \"{key}\"")),
                _ => Err(format!("bad entry in \"{key}\"")),
            })
            .collect(),
        _ => Err(format!("\"{key}\" is not an array")),
    }
}

fn event_of(line: &str) -> Result<Event, String> {
    let mut p = Parser::new(line);
    let JVal::Obj(fields) = p.object()? else {
        unreachable!("object() only returns Obj");
    };
    if p.peek().is_some() {
        return Err(format!("trailing bytes after object at {}", p.pos));
    }
    let f = Fields { fields: &fields };
    let seq = f.u64("seq")?;
    let clock = f.f64("clock")?;
    let kind = match f.str("type")? {
        "span_begin" => EventKind::SpanBegin {
            id: f.u64("id")?,
            parent: f.opt_u64("parent")?,
            label: f.str("label")?.to_string(),
        },
        "span_end" => EventKind::SpanEnd {
            id: f.u64("id")?,
            label: f.str("label")?.to_string(),
        },
        "call" => EventKind::Call {
            op: op_of(f.str("op")?)?,
            shard: shard_of(&f)?,
            terms: f.u64("terms")?,
            err: f.opt_str("err")?.map(str::to_string),
            charge: charge_of(&f)?,
        },
        "rebate" => EventKind::Rebate {
            shard: shard_of(&f)?,
            charge: charge_of(&f)?,
        },
        "backoff" => EventKind::Backoff {
            shard: shard_of(&f)?,
            seconds: f.f64("seconds")?,
            charge: charge_of(&f)?,
        },
        "retry" => EventKind::Retry {
            shard: shard_of(&f)?,
            attempt: f.u64("attempt")? as u32,
        },
        "failover" => EventKind::Failover {
            shard: f.u64("shard")? as usize,
            replica: f.u64("replica")? as usize,
        },
        "circuit_open" => EventKind::CircuitOpen {
            shard: f.u64("shard")? as usize,
            rate: f.u64("rate")? as u32,
        },
        "circuit_close" => EventKind::CircuitClose {
            shard: f.u64("shard")? as usize,
            rate: f.u64("rate")? as u32,
        },
        "hedge" => EventKind::Hedge {
            shard: f.u64("shard")? as usize,
            replica: f.u64("replica")? as usize,
        },
        "cancel" => EventKind::Cancel {
            shard: f.u64("shard")? as usize,
            replica: f.u64("replica")? as usize,
        },
        "deadline_miss" => EventKind::DeadlineMiss {
            shard: shard_of(&f)?,
        },
        "migration_begin" => EventKind::MigrationBegin {
            moves: f.u64("moves")?,
            docs: f.u64("docs")?,
            epoch: f.u64("epoch")?,
        },
        "migration_batch" => EventKind::MigrationBatch {
            mv: f.u64("mv")?,
            src: f.u64("src")? as usize,
            dst: f.u64("dst")? as usize,
            docs: f.u64("docs")?,
            postings: f.u64("postings")?,
            high_water: f.u64("high_water")?,
            epoch: f.u64("epoch")?,
        },
        "migration_resume" => EventKind::MigrationResume {
            mv: f.u64("mv")?,
            src: f.u64("src")? as usize,
            dst: f.u64("dst")? as usize,
            docs: f.u64("docs")?,
            epoch: f.u64("epoch")?,
        },
        "migration_abort" => EventKind::MigrationAbort {
            mv: f.u64("mv")?,
            src: f.u64("src")? as usize,
            dst: f.u64("dst")? as usize,
            reverted: f.u64("reverted")?,
            epoch: f.u64("epoch")?,
        },
        "routing_stale" => {
            let shards = match f.get("shards")? {
                JVal::Arr(items) => items
                    .iter()
                    .map(|v| match v {
                        JVal::Num(n) => {
                            n.parse::<usize>().map_err(|_| "bad shard index".to_string())
                        }
                        _ => Err("bad shard index".to_string()),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("\"shards\" is not an array".to_string()),
            };
            EventKind::RoutingStale {
                from_epoch: f.u64("from_epoch")?,
                to_epoch: f.u64("to_epoch")?,
                shards,
            }
        }
        "doc_traffic" => EventKind::DocTraffic {
            shard: shard_of(&f)?,
            docs: u64_array(&f, "docs")?,
        },
        "skew_alert" => EventKind::SkewAlert {
            window: f.u64("window")?,
            shard: f.u64("shard")? as usize,
            share_ppm: f.u64("share_ppm")?,
            hot: f.bool("hot")?,
        },
        "slo_alert" => EventKind::SloAlert {
            window: f.u64("window")?,
            fast_ppm: f.u64("fast_ppm")?,
            slow_ppm: f.u64("slow_ppm")?,
            firing: f.bool("firing")?,
        },
        "drift_alert" => EventKind::DriftAlert {
            window: f.u64("window")?,
            component: component_of(f.str("component")?)?,
            configured: f.f64("configured")?,
            fitted: f.f64("fitted")?,
            drifted: f.bool("drifted")?,
        },
        "admit" => EventKind::Admit {
            tenant: f.u64("tenant")?,
            arrival: f.u64("arrival")?,
            est_cost: f.f64("est_cost")?,
        },
        "shed" => EventKind::Shed {
            tenant: f.u64("tenant")?,
            arrival: f.u64("arrival")?,
            queued: f.u64("queued")?,
        },
        "budget_exhausted" => EventKind::BudgetExhausted {
            tenant: f.u64("tenant")?,
            arrival: f.u64("arrival")?,
            spent_ms: f.u64("spent_ms")?,
            remaining_ms: f.u64("remaining_ms")?,
        },
        "cache_hit" => EventKind::CacheHit {
            scope: cache_scope_of(f.str("scope")?)?,
            epoch: f.u64("epoch")?,
        },
        "rebalance_advice" => EventKind::RebalanceAdvice {
            window: f.u64("window")?,
            src: f.u64("src")? as usize,
            dst: f.u64("dst")? as usize,
            lo: f.u64("lo")?,
            hi: f.u64("hi")?,
            hits: f.u64("hits")?,
        },
        "planner" => {
            let est = f.obj("est")?;
            let cols = match f.get("probe_cols")? {
                JVal::Arr(items) => items
                    .iter()
                    .map(|v| match v {
                        JVal::Num(n) => {
                            n.parse::<usize>().map_err(|_| "bad probe col".to_string())
                        }
                        _ => Err("bad probe col".to_string()),
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("\"probe_cols\" is not an array".to_string()),
            };
            EventKind::Planner(PlannerChoice {
                label: f.str("label")?.to_string(),
                chosen: f.bool("chosen")?,
                probe_cols: cols,
                invocation: est.f64("invocation")?,
                processing: est.f64("processing")?,
                transmission: est.f64("transmission")?,
                rtp: est.f64("rtp")?,
                searches: est.f64("searches")?,
                est_rows: est.f64("rows")?,
                est_postings: est.f64("postings")?,
                effective_c_i: f.f64("effective_c_i")?,
            })
        }
        "estimate_sample" => EventKind::EstimateSample {
            cost_q: f.f64("cost_q")?,
            selectivity_q: f.f64("selectivity_q")?,
            constants_q: f.f64("constants_q")?,
            regret_share: f.f64("regret_share")?,
        },
        "estimate_drift" => EventKind::EstimateDrift {
            window: f.u64("window")?,
            component: quality_component_of(f.str("component")?)?,
            p90_q: f.f64("p90_q")?,
            regret_share: f.f64("regret_share")?,
            firing: f.bool("firing")?,
        },
        other => return Err(format!("unknown event type \"{other}\"")),
    };
    Ok(Event { seq, clock, kind })
}

/// Parses a JSONL trace (one event per non-empty line) back into events.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, TraceParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(event_of(line).map_err(|message| TraceParseError {
            line: i + 1,
            message,
        })?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: Event) {
        let line = ev.to_jsonl();
        let parsed = parse_jsonl(&line).expect("parses");
        assert_eq!(parsed, vec![ev], "round trip of {line}");
        assert_eq!(parsed[0].to_jsonl(), line, "byte-identical re-serialize");
    }

    #[test]
    fn round_trips_every_event_kind() {
        let charge = Charge {
            invocations: 1,
            rejected: 0,
            postings: 120,
            docs_short: -3,
            docs_long: 2,
            time_invocation: 3.0,
            time_processing: 0.05080000000000001,
            time_transmission: 8.045,
            faults: 1,
            retries: 2,
            time_backoff: 0.125,
        };
        roundtrip(Event {
            seq: 0,
            clock: 0.0,
            kind: EventKind::SpanBegin {
                id: 0,
                parent: None,
                label: "P+RTP{name}".into(),
            },
        });
        roundtrip(Event {
            seq: 1,
            clock: 1.5,
            kind: EventKind::SpanBegin {
                id: 1,
                parent: Some(0),
                label: "gather/shard2".into(),
            },
        });
        roundtrip(Event {
            seq: 2,
            clock: 11.045,
            kind: EventKind::Call {
                op: "search",
                shard: Some(2),
                terms: 4,
                err: Some("cap \"M\" hit\nline2".into()),
                charge,
            },
        });
        roundtrip(Event {
            seq: 3,
            clock: 11.045,
            kind: EventKind::Rebate {
                shard: None,
                charge,
            },
        });
        roundtrip(Event {
            seq: 4,
            clock: 11.17,
            kind: EventKind::Backoff {
                shard: Some(0),
                seconds: 0.125,
                charge,
            },
        });
        roundtrip(Event {
            seq: 5,
            clock: 11.17,
            kind: EventKind::Retry {
                shard: None,
                attempt: 3,
            },
        });
        roundtrip(Event {
            seq: 6,
            clock: 11.17,
            kind: EventKind::Failover {
                shard: 2,
                replica: 1,
            },
        });
        roundtrip(Event {
            seq: 7,
            clock: 11.17,
            kind: EventKind::CircuitOpen { shard: 2, rate: 801 },
        });
        roundtrip(Event {
            seq: 8,
            clock: 11.17,
            kind: EventKind::CircuitClose { shard: 2, rate: 12 },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::Hedge {
                shard: 1,
                replica: 0,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::Cancel {
                shard: 1,
                replica: 1,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::DeadlineMiss { shard: Some(3) },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::DeadlineMiss { shard: None },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::MigrationBegin {
                moves: 2,
                docs: 17,
                epoch: 3,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::MigrationBatch {
                mv: 0,
                src: 2,
                dst: 0,
                docs: 4,
                postings: 96,
                high_water: 31,
                epoch: 4,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::MigrationResume {
                mv: 1,
                src: 2,
                dst: 0,
                docs: 3,
                epoch: 4,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::MigrationAbort {
                mv: 1,
                src: 2,
                dst: 0,
                reverted: 3,
                epoch: 5,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::RoutingStale {
                from_epoch: 3,
                to_epoch: 5,
                shards: vec![0, 2],
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::RoutingStale {
                from_epoch: 0,
                to_epoch: 1,
                shards: Vec::new(),
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::Call {
                op: "xfer.out",
                shard: Some(2),
                terms: 0,
                err: None,
                charge,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::DocTraffic {
                shard: Some(1),
                docs: vec![3, 17, 120],
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::DocTraffic {
                shard: None,
                docs: Vec::new(),
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::SkewAlert {
                window: 4,
                shard: 1,
                share_ppm: 612_500,
                hot: true,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::SloAlert {
                window: 7,
                fast_ppm: 2_000_000,
                slow_ppm: 1_250_000,
                firing: false,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::DriftAlert {
                window: 6,
                component: "c_p",
                configured: 0.0002,
                fitted: 0.00031,
                drifted: true,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::RebalanceAdvice {
                window: 4,
                src: 1,
                dst: 3,
                lo: 40,
                hi: 90,
                hits: 37,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::Admit {
                tenant: 2,
                arrival: 17,
                est_cost: 145.125,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::Shed {
                tenant: 3,
                arrival: 19,
                queued: 7,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::BudgetExhausted {
                tenant: 1,
                arrival: 23,
                spent_ms: 182_500,
                remaining_ms: 90_000,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::CacheHit {
                scope: "probe",
                epoch: 2,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::CacheHit {
                scope: "plan",
                epoch: 0,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::Planner(PlannerChoice {
                label: "P+RTP{name}".into(),
                chosen: true,
                probe_cols: vec![0, 2],
                invocation: 12.0,
                processing: 0.5,
                transmission: 3.25,
                rtp: 0.001,
                searches: 4.0,
                est_rows: 6.5,
                est_postings: 1200.0,
                effective_c_i: 3.2,
            }),
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::EstimateSample {
                cost_q: 1.75,
                selectivity_q: 2.5,
                constants_q: 1.0,
                regret_share: 0.125,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::EstimateDrift {
                window: 5,
                component: "selectivity",
                p90_q: 3.25,
                regret_share: 0.2,
                firing: true,
            },
        });
        roundtrip(Event {
            seq: 9,
            clock: 11.17,
            kind: EventKind::EstimateDrift {
                window: 8,
                component: "constants",
                p90_q: 1.125,
                regret_share: 0.0,
                firing: false,
            },
        });
        roundtrip(Event {
            seq: 10,
            clock: 12.0,
            kind: EventKind::SpanEnd {
                id: 1,
                label: "gather/shard2".into(),
            },
        });
    }

    #[test]
    fn floats_round_trip_exactly() {
        // Shortest-roundtrip Display output must parse back to identical
        // bits, or trace-replay clocks would drift.
        for v in [0.1, 1.0 / 3.0, 0.05080000000000001, 1e-5, 123456.789012345] {
            let ev = Event {
                seq: 0,
                clock: v,
                kind: EventKind::Retry {
                    shard: None,
                    attempt: 1,
                },
            };
            let parsed = parse_jsonl(&ev.to_jsonl()).unwrap();
            assert_eq!(parsed[0].clock.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn blank_lines_are_skipped_and_errors_carry_line_numbers() {
        let ev = Event {
            seq: 0,
            clock: 0.0,
            kind: EventKind::Retry {
                shard: None,
                attempt: 1,
            },
        };
        let text = format!("{}\n\n{}\n", ev.to_jsonl(), ev.to_jsonl());
        assert_eq!(parse_jsonl(&text).unwrap().len(), 2);
        let err = parse_jsonl("{\"seq\":0,\"clock\":0,\"type\":\"nope\"}").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("nope"), "{err}");
        let err = parse_jsonl("not json").unwrap_err();
        assert_eq!(err.line, 1);
    }
}
