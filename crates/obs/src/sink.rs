//! Where events go: nothing (default), an in-memory ring, JSONL text, or
//! a fan-out tee feeding several sinks at once.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::event::Event;

/// Receives every event the recorder emits, in sequence order. Sinks are
/// passive observers — they must never touch a ledger.
pub trait Sink {
    /// Accepts one event.
    fn record(&self, ev: &Event);
}

/// Drops everything. The default when tracing is attached only for
/// metrics, and the reference point for the "observation never perturbs
/// the cost model" audit.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _ev: &Event) {}
}

/// Keeps the last `capacity` events in memory; tests hold their own
/// `Rc<RingSink>` and inspect [`RingSink::events`] after the run.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: RefCell<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            buf: RefCell::new(VecDeque::new()),
        }
    }

    /// An effectively unbounded ring for short test runs.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.borrow().iter().cloned().collect()
    }

    /// Drains and returns the retained events.
    pub fn take(&self) -> Vec<Event> {
        self.buf.borrow_mut().drain(..).collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }
}

impl Sink for RingSink {
    fn record(&self, ev: &Event) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

/// Serializes each event as one JSON line into an in-memory buffer with a
/// fixed field order; two identical runs produce byte-identical output
/// (the trace-determinism golden test diffs exactly this).
#[derive(Debug, Default)]
pub struct JsonlSink {
    buf: RefCell<String>,
}

impl JsonlSink {
    /// An empty JSONL buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The JSONL text accumulated so far (one `\n`-terminated line per
    /// event).
    pub fn contents(&self) -> String {
        self.buf.borrow().clone()
    }

    /// Drains and returns the accumulated text.
    pub fn take(&self) -> String {
        std::mem::take(&mut self.buf.borrow_mut())
    }
}

impl Sink for JsonlSink {
    fn record(&self, ev: &Event) {
        let mut buf = self.buf.borrow_mut();
        buf.push_str(&ev.to_jsonl());
        buf.push('\n');
    }
}

/// Forwards every event to each of several sinks, in order. This is how a
/// live [`Monitor`](crate::Monitor) tees off the same stream a trace sink
/// is already consuming: the recorder still stamps each event exactly
/// once, so the teed copies are identical and attaching more observers
/// can never change what any single observer sees.
pub struct FanoutSink {
    sinks: Vec<Rc<dyn Sink>>,
}

impl FanoutSink {
    /// A tee over `sinks`; events are delivered in the given order.
    pub fn new(sinks: Vec<Rc<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, ev: &Event) {
        for sink in &self.sinks {
            sink.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            clock: 0.0,
            kind: EventKind::Retry {
                shard: None,
                attempt: 1,
            },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingSink::new(2);
        ring.record(&ev(0));
        ring.record(&ev(1));
        ring.record(&ev(2));
        let kept: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![1, 2]);
    }

    #[test]
    fn fanout_delivers_to_every_sink_in_order() {
        let a = Rc::new(RingSink::unbounded());
        let b = Rc::new(RingSink::unbounded());
        let tee = FanoutSink::new(vec![a.clone() as Rc<dyn Sink>, b.clone()]);
        tee.record(&ev(0));
        tee.record(&ev(1));
        let seqs = |r: &RingSink| r.events().iter().map(|e| e.seq).collect::<Vec<_>>();
        assert_eq!(seqs(&a), vec![0, 1]);
        assert_eq!(seqs(&a), seqs(&b), "both sinks see the identical stream");
    }

    #[test]
    fn jsonl_appends_lines() {
        let sink = JsonlSink::new();
        sink.record(&ev(0));
        sink.record(&ev(1));
        let text = sink.contents();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert_eq!(sink.take(), text);
        assert!(sink.contents().is_empty());
    }
}
