//! Trace-driven cost-constant fitting.
//!
//! Every chargeable event in a trace carries both the *work counts* the
//! server performed (invocations, postings, short/long documents) and the
//! *simulated seconds* its ledger booked for them. The ledger prices work
//! linearly — `time_invocation = c_i × invocations`, `time_processing =
//! c_p × postings`, `time_transmission = c_s × docs_short + c_l ×
//! docs_long` — so the trace is an exactly-determined regression problem:
//! least squares over the per-event charge vectors recovers the constants
//! the run was generated with, and non-zero residuals flag a server whose
//! real pricing has drifted from the linear model.
//!
//! `c_i` and `c_p` are one-dimensional fits. `c_s` and `c_l` share the
//! transmission field, so they are fit jointly via the 2×2 normal
//! equations; when the observations never mix the two forms the
//! off-diagonal term vanishes and the fit degenerates to two independent
//! slopes. A component with no work observed at all (e.g. no long-form
//! retrieval in the workload) is *undetermined*: its fit is flagged and
//! callers keep their configured value.
//!
//! Backoff events are deliberately excluded from the constant fit — their
//! seconds follow the retry schedule, not a per-unit price. Instead the
//! calibration aggregates them so the planner can replace its analytic
//! `fault_rate × mean_backoff` surcharge with the *observed* backoff per
//! invocation (see `observed_fault_rate`/`mean_backoff_per_fault`; the
//! product is exactly `backoff_seconds / invocations`).

use crate::event::{Event, EventKind};

/// One fitted cost constant plus the evidence behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentFit {
    /// Component name: `c_i`, `c_p`, `c_s`, or `c_l`.
    pub name: &'static str,
    /// The least-squares estimate. Meaningless when `determined` is
    /// false (no event observed this component's work).
    pub fitted: f64,
    /// Chargeable events whose work counts touched this component.
    pub observations: u64,
    /// Sum of squared residual seconds over those events.
    pub sum_sq_residual: f64,
    /// Whether the trace pins this constant down at all.
    pub determined: bool,
}

impl ComponentFit {
    fn undetermined(name: &'static str) -> Self {
        Self {
            name,
            fitted: 0.0,
            observations: 0,
            sum_sq_residual: 0.0,
            determined: false,
        }
    }
}

/// What a trace says the cost constants are.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCalibration {
    /// Per-invocation connection cost.
    pub c_i: ComponentFit,
    /// Per-posting processing cost.
    pub c_p: ComponentFit,
    /// Per-short-form-document transmission cost.
    pub c_s: ComponentFit,
    /// Per-long-form-document transmission cost.
    pub c_l: ComponentFit,
    /// Chargeable `call`/`rebate` events the fit consumed.
    pub events: u64,
    /// Net invocations observed (rebates subtract, matching the ledger).
    pub invocations: i64,
    /// Faults observed.
    pub faults: i64,
    /// Backoff pauses observed (one per `backoff` event's retry count).
    pub retries: i64,
    /// Total observed backoff, simulated seconds.
    pub backoff_seconds: f64,
}

impl TraceCalibration {
    /// Observed fault rate: faults per invocation.
    pub fn observed_fault_rate(&self) -> f64 {
        if self.invocations > 0 {
            self.faults as f64 / self.invocations as f64
        } else {
            0.0
        }
    }

    /// Observed mean backoff per fault. Together with
    /// [`observed_fault_rate`](Self::observed_fault_rate) this re-derives
    /// the planner's invocation surcharge from observation: `rate × mean`
    /// is exactly [`backoff_per_invocation`](Self::backoff_per_invocation).
    pub fn mean_backoff_per_fault(&self) -> f64 {
        if self.faults > 0 {
            self.backoff_seconds / self.faults as f64
        } else {
            0.0
        }
    }

    /// Observed backoff seconds per invocation — the effective `c_i`
    /// surcharge this trace actually paid.
    pub fn backoff_per_invocation(&self) -> f64 {
        if self.invocations > 0 {
            self.backoff_seconds / self.invocations as f64
        } else {
            0.0
        }
    }

    /// Root-mean-square residual seconds across all determined
    /// components, over all events the fit consumed. Zero (to float
    /// noise) when the server prices work exactly linearly.
    pub fn rms_residual(&self) -> f64 {
        let sq = self.c_i.sum_sq_residual
            + self.c_p.sum_sq_residual
            + self.c_s.sum_sq_residual
            + self.c_l.sum_sq_residual;
        let n = self.c_i.observations
            + self.c_p.observations
            + self.c_s.observations
            + self.c_l.observations;
        if n == 0 {
            0.0
        } else {
            (sq / n as f64).sqrt()
        }
    }
}

/// One regression row: work counts and the seconds booked for them.
struct Row {
    inv: f64,
    post: f64,
    short: f64,
    long: f64,
    t_inv: f64,
    t_proc: f64,
    t_xmit: f64,
}

/// Simple through-origin slope fit `t ≈ c × x` over rows with `x ≠ 0`.
fn fit_slope<'a>(
    name: &'static str,
    rows: impl Iterator<Item = &'a Row> + Clone,
    x: impl Fn(&Row) -> f64,
    t: impl Fn(&Row) -> f64,
) -> ComponentFit {
    let mut sxx = 0.0;
    let mut sxt = 0.0;
    let mut n = 0u64;
    for r in rows.clone() {
        let xv = x(r);
        if xv != 0.0 {
            sxx += xv * xv;
            sxt += xv * t(r);
            n += 1;
        }
    }
    if n == 0 || sxx == 0.0 {
        return ComponentFit::undetermined(name);
    }
    let fitted = sxt / sxx;
    let mut ssr = 0.0;
    for r in rows {
        let xv = x(r);
        if xv != 0.0 {
            let e = t(r) - fitted * xv;
            ssr += e * e;
        }
    }
    ComponentFit {
        name,
        fitted,
        observations: n,
        sum_sq_residual: ssr,
        determined: true,
    }
}

/// Joint 2-parameter fit of `t_xmit ≈ c_s × short + c_l × long` via the
/// normal equations, degrading to independent slopes when the system is
/// singular (a component with no work stays undetermined).
fn fit_transmission(rows: &[Row]) -> (ComponentFit, ComponentFit) {
    let mut sss = 0.0; // Σ short²
    let mut sll = 0.0; // Σ long²
    let mut ssl = 0.0; // Σ short·long
    let mut sst = 0.0; // Σ short·t
    let mut slt = 0.0; // Σ long·t
    for r in rows {
        if r.short != 0.0 || r.long != 0.0 {
            sss += r.short * r.short;
            sll += r.long * r.long;
            ssl += r.short * r.long;
            sst += r.short * r.t_xmit;
            slt += r.long * r.t_xmit;
        }
    }
    let det = sss * sll - ssl * ssl;
    // Relative singularity check: the joint solve needs both diagonal
    // terms and genuine mixing; otherwise fall back to independent fits.
    if sss > 0.0 && sll > 0.0 && det.abs() > 1e-9 * sss * sll {
        let c_s = (sll * sst - ssl * slt) / det;
        let c_l = (sss * slt - ssl * sst) / det;
        let mut fit_s = ComponentFit {
            name: "c_s",
            fitted: c_s,
            observations: 0,
            sum_sq_residual: 0.0,
            determined: true,
        };
        let mut fit_l = ComponentFit {
            name: "c_l",
            fitted: c_l,
            observations: 0,
            sum_sq_residual: 0.0,
            determined: true,
        };
        for r in rows {
            let e = r.t_xmit - c_s * r.short - c_l * r.long;
            if r.short != 0.0 {
                fit_s.observations += 1;
                fit_s.sum_sq_residual += e * e;
            } else if r.long != 0.0 {
                fit_l.observations += 1;
                fit_l.sum_sq_residual += e * e;
            }
        }
        (fit_s, fit_l)
    } else {
        // Unmixed (or one-sided) observations: each form is priced by the
        // rows where only it appears.
        (
            fit_slope(
                "c_s",
                rows.iter().filter(|r| r.long == 0.0),
                |r| r.short,
                |r| r.t_xmit,
            ),
            fit_slope(
                "c_l",
                rows.iter().filter(|r| r.short == 0.0),
                |r| r.long,
                |r| r.t_xmit,
            ),
        )
    }
}

/// Fits cost constants and the observed fault model from a recorded
/// trace. Accepts full or sampled traces: the keep decision never looks
/// at charges, so a sampled trace estimates the same constants (though
/// its fault-rate aggregates oversample chaos by design — read those from
/// full traces only).
pub fn calibrate_trace(events: &[Event]) -> TraceCalibration {
    let mut rows = Vec::new();
    let mut invocations = 0i64;
    let mut faults = 0i64;
    let mut retries = 0i64;
    let mut backoff_seconds = 0.0f64;
    let mut chargeable = 0u64;
    for ev in events {
        match &ev.kind {
            EventKind::Call { charge, .. } | EventKind::Rebate { charge, .. } => {
                chargeable += 1;
                invocations += charge.invocations;
                faults += charge.faults;
                rows.push(Row {
                    inv: charge.invocations as f64,
                    post: charge.postings as f64,
                    short: charge.docs_short as f64,
                    long: charge.docs_long as f64,
                    t_inv: charge.time_invocation,
                    t_proc: charge.time_processing,
                    t_xmit: charge.time_transmission,
                });
            }
            EventKind::Backoff { charge, .. } => {
                chargeable += 1;
                retries += charge.retries;
                backoff_seconds += charge.time_backoff;
            }
            _ => {}
        }
    }
    let c_i = fit_slope("c_i", rows.iter(), |r| r.inv, |r| r.t_inv);
    let c_p = fit_slope("c_p", rows.iter(), |r| r.post, |r| r.t_proc);
    let (c_s, c_l) = fit_transmission(&rows);
    TraceCalibration {
        c_i,
        c_p,
        c_s,
        c_l,
        events: chargeable,
        invocations,
        faults,
        retries,
        backoff_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Charge;

    fn call(charge: Charge) -> Event {
        Event {
            seq: 0,
            clock: 0.0,
            kind: EventKind::Call {
                op: "search",
                shard: None,
                terms: 1,
                err: None,
                charge,
            },
        }
    }

    fn search(inv: i64, post: i64, short: i64, c: (f64, f64, f64, f64)) -> Event {
        call(Charge {
            invocations: inv,
            postings: post,
            docs_short: short,
            time_invocation: c.0 * inv as f64,
            time_processing: c.1 * post as f64,
            time_transmission: c.2 * short as f64,
            ..Charge::default()
        })
    }

    fn retrieve(c_l: f64) -> Event {
        call(Charge {
            docs_long: 1,
            time_transmission: c_l,
            ..Charge::default()
        })
    }

    #[test]
    fn recovers_constants_from_a_linear_trace_exactly() {
        let c = (2.5, 3e-5, 0.02, 5.0);
        let mut events = Vec::new();
        for i in 1..20i64 {
            events.push(search(1, 37 * i, i % 7, c));
        }
        events.push(retrieve(c.3));
        events.push(retrieve(c.3));
        let cal = calibrate_trace(&events);
        assert!((cal.c_i.fitted - 2.5).abs() < 1e-12, "{:?}", cal.c_i);
        assert!((cal.c_p.fitted - 3e-5).abs() < 1e-12, "{:?}", cal.c_p);
        assert!((cal.c_s.fitted - 0.02).abs() < 1e-12, "{:?}", cal.c_s);
        assert!((cal.c_l.fitted - 5.0).abs() < 1e-12, "{:?}", cal.c_l);
        assert!(cal.c_i.determined && cal.c_l.determined);
        assert!(cal.rms_residual() < 1e-9);
        assert_eq!(cal.events, 21);
    }

    #[test]
    fn rebates_are_valid_negative_observations() {
        let c = (3.0, 1e-5, 0.015, 4.0);
        let events = vec![
            search(1, 100, 4, c),
            Event {
                seq: 1,
                clock: 0.0,
                kind: EventKind::Rebate {
                    shard: None,
                    charge: Charge {
                        invocations: -2,
                        docs_short: -3,
                        time_invocation: -2.0 * c.0,
                        time_transmission: -3.0 * c.2,
                        ..Charge::default()
                    },
                },
            },
        ];
        let cal = calibrate_trace(&events);
        assert!((cal.c_i.fitted - c.0).abs() < 1e-12);
        assert!((cal.c_s.fitted - c.2).abs() < 1e-12);
        assert_eq!(cal.invocations, -1, "net of the rebate");
    }

    #[test]
    fn missing_work_leaves_a_component_undetermined() {
        let events = vec![search(1, 50, 2, (3.0, 1e-5, 0.015, 4.0))];
        let cal = calibrate_trace(&events);
        assert!(cal.c_i.determined);
        assert!(!cal.c_l.determined, "no long-form work in the trace");
        assert_eq!(cal.c_l.observations, 0);
    }

    #[test]
    fn backoff_feeds_the_fault_model_not_the_constants() {
        let c = (3.0, 1e-5, 0.015, 4.0);
        let mut events = vec![search(1, 10, 1, c), search(1, 10, 1, c)];
        events.push(Event {
            seq: 9,
            clock: 0.0,
            kind: EventKind::Backoff {
                shard: None,
                seconds: 0.5,
                charge: Charge {
                    retries: 1,
                    time_backoff: 0.5,
                    faults: 0,
                    ..Charge::default()
                },
            },
        });
        // The fault itself is booked on the faulted call.
        events.push(call(Charge {
            invocations: 1,
            faults: 1,
            time_invocation: c.0,
            ..Charge::default()
        }));
        let cal = calibrate_trace(&events);
        assert!((cal.c_i.fitted - 3.0).abs() < 1e-12, "backoff never pollutes c_i");
        assert_eq!(cal.faults, 1);
        assert_eq!(cal.retries, 1);
        assert!((cal.backoff_seconds - 0.5).abs() < 1e-12);
        assert!((cal.observed_fault_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((cal.mean_backoff_per_fault() - 0.5).abs() < 1e-12);
        // rate × mean == backoff per invocation, exactly.
        let product = cal.observed_fault_rate() * cal.mean_backoff_per_fault();
        assert!((product - cal.backoff_per_invocation()).abs() < 1e-15);
    }

    #[test]
    fn nonlinear_pricing_shows_up_as_residual() {
        let mut events = vec![search(1, 10, 0, (3.0, 1e-5, 0.015, 4.0))];
        // A second event priced off-model.
        events.push(call(Charge {
            invocations: 1,
            time_invocation: 4.0,
            ..Charge::default()
        }));
        let cal = calibrate_trace(&events);
        assert!(cal.rms_residual() > 0.1, "drifted pricing must be visible");
    }

    #[test]
    fn empty_trace_is_fully_undetermined() {
        let cal = calibrate_trace(&[]);
        assert!(!cal.c_i.determined && !cal.c_p.determined);
        assert!(!cal.c_s.determined && !cal.c_l.determined);
        assert_eq!(cal.rms_residual(), 0.0);
        assert_eq!(cal.observed_fault_rate(), 0.0);
    }
}
