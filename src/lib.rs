//! Facade crate re-exporting the textjoin workspace.
pub use textjoin_core as core;
pub use textjoin_obs as obs;
pub use textjoin_rel as rel;
pub use textjoin_text as text;
pub use textjoin_workload as workload;
