//! A tour of the single-join optimizer (paper, Section 5): how the chosen
//! method and probe columns shift as the workload statistics change, and
//! the Example 5.1 / 5.2 probe-column effects.
//!
//! ```text
//! cargo run --example optimizer_tour
//! ```

use textjoin::core::cost::formulas::cost_p_ts;
use textjoin::core::cost::params::{CostParams, JoinStatistics, PredStats};
use textjoin::core::methods::Projection;
use textjoin::core::optimizer::single::{
    choose_method, optimal_probe_exhaustive,
};
use textjoin::workload::knobs;

fn stats_at_base(d: f64) -> JoinStatistics {
    knobs::q3_base(d)
}

fn main() {
    let d = 10_000.0;
    let params = knobs::mercury_params(d);

    // --- 1. Method costs vs probe-column selectivity ---------------------
    println!("1. TS vs P1+TS as s_1 sweeps (Q3 base) — probing pays only while probes fail:\n");
    println!(
        "   {:>5}  {:>9} {:>9}   cheaper",
        "s_1", "TS", "P1+TS"
    );
    for s1 in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let stats = knobs::with_s1(knobs::q3_base(d), s1);
        let ts = textjoin::core::cost::formulas::cost_ts(&params, &stats).total();
        let pts = cost_p_ts(&params, &stats, &[0]).total();
        println!(
            "   {:>5.2}  {:>8.1}s {:>8.1}s   {}",
            s1,
            ts,
            pts,
            if pts < ts { "P1+TS" } else { "TS" }
        );
    }
    let overall = choose_method(&params, &stats_at_base(d), Projection::Full)
        .expect("candidates");
    println!("\n   Across all methods the optimizer picks {} at the base point.", overall.label);

    // --- 2. Example 5.1: best probe column is not the most selective ----
    println!("\n2. Example 5.1 — the optimal probe column trades N_i against s_i·N:");
    let mut inv_only = params;
    inv_only.constants = textjoin::text::server::CostConstants {
        c_i: 1.0,
        c_p: 0.0,
        c_s: 0.0,
        c_l: 0.0,
    };
    let stats = JoinStatistics {
        n: 1000.0,
        n_k: 1000.0,
        preds: vec![
            PredStats::simple(0.10, 1.0, 900.0), // selective, many values
            PredStats::simple(0.20, 1.0, 10.0),  // less selective, few values
        ],
        sel_fanout: d,
        sel_postings: 0.0,
        sel_terms: 0,
        needs_long: false,
        short_form_sufficient: true,
    };
    let c0 = cost_p_ts(&inv_only, &stats, &[0]).total();
    let c1 = cost_p_ts(&inv_only, &stats, &[1]).total();
    println!("   probe on col 1 (s=0.10, N_1=900): {c0:>7.0} invocations");
    println!("   probe on col 2 (s=0.20, N_2= 10): {c1:>7.0} invocations  ← wins despite higher s");

    // --- 3. Example 5.2: a multi-column probe can dominate --------------
    println!("\n3. Example 5.2 — under the independent (g=k) model a 2-column probe dominates:");
    let mut ex52 = CostParams::mercury(1e6).with_g(3);
    ex52.constants = textjoin::text::server::CostConstants {
        c_i: 1.0,
        c_p: 0.0,
        c_s: 0.0,
        c_l: 0.0,
    };
    let stats = JoinStatistics {
        n: 1e5,
        n_k: 1e5,
        preds: vec![
            PredStats::simple(0.005, 1.0, 1e3),
            PredStats::simple(0.01, 1.0, 10.0),
            PredStats::simple(0.01, 1.0, 10.0),
        ],
        sel_fanout: 1e6,
        sel_postings: 0.0,
        sel_terms: 0,
        needs_long: false,
        short_form_sufficient: true,
    };
    for subset in [vec![0], vec![1], vec![0, 1], vec![1, 2]] {
        let c = cost_p_ts(&ex52, &stats, &subset).total();
        println!("   probe {subset:?}: {c:>9.0}");
    }
    let (best_cols, best) =
        optimal_probe_exhaustive(&ex52, &stats, cost_p_ts).expect("non-empty");
    println!(
        "   exhaustive optimum: {best_cols:?} at {:.0} — found by the bounded\n\
         search too, since |optimal| ≤ min(k, 2g) (Theorem 5.3).",
        best.total()
    );
}
