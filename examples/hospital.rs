//! The paper's Section 1 motivating scenario: a hospital information
//! system joining structured patient records with external medical
//! literature (cf. the [YA94] system the paper cites).
//!
//! Physicians ask: *"for each of my patients on an ACE-inhibitor, find
//! recent literature about their diagnosis that mentions the drug"* —
//! a conjunctive query with two foreign join predicates (diagnosis in
//! title, drug in abstract), which makes the probing methods applicable.
//!
//! ```text
//! cargo run --example hospital
//! ```

use textjoin::core::methods::{ExecContext, Projection};
use textjoin::core::optimizer::single::enumerate_methods;
use textjoin::core::query::{prepare, SingleJoinQuery};
use textjoin::rel::catalog::Catalog;
use textjoin::rel::expr::Pred;
use textjoin::rel::schema::{ColId, RelSchema};
use textjoin::rel::table::Table;
use textjoin::rel::tuple;
use textjoin::rel::value::ValueType;
use textjoin::text::doc::{Document, TextSchema};
use textjoin::text::index::Collection;
use textjoin::text::server::TextServer;

fn literature() -> TextServer {
    let mut schema = TextSchema::new();
    let ti = schema.add_field("title", "TI", true);
    let ab = schema.add_field("abstract", "AB", false);
    let jo = schema.add_field("journal", "JO", true);
    let mut coll = Collection::new(schema);
    let mut add = |title: &str, abs: &str, journal: &str| {
        coll.add_document(
            Document::new()
                .with(ti, title)
                .with(ab, abs)
                .with(jo, journal),
        );
    };
    add(
        "hypertension outcomes in elderly cohorts",
        "We study lisinopril and enalapril dosing for chronic hypertension.",
        "NEJM",
    );
    add(
        "diabetes and renal function",
        "Metformin interactions; captopril contraindications in nephropathy.",
        "Lancet",
    );
    add(
        "asthma management guidelines",
        "Albuterol and steroid therapy for pediatric asthma.",
        "JAMA",
    );
    add(
        "hypertension drug trials",
        "A randomized trial of enalapril versus placebo.",
        "NEJM",
    );
    add(
        "migraine prophylaxis",
        "Propranolol efficacy in chronic migraine.",
        "Lancet",
    );
    TextServer::new(coll)
}

fn patients() -> Catalog {
    let mut catalog = Catalog::new();
    let mut t = Table::new(
        "patient",
        RelSchema::from_columns(vec![
            ("id", ValueType::Int),
            ("diagnosis", ValueType::Str),
            ("drug", ValueType::Str),
            ("ward", ValueType::Str),
        ]),
    );
    t.push(tuple![1i64, "hypertension", "enalapril", "cardio"]);
    t.push(tuple![2i64, "hypertension", "lisinopril", "cardio"]);
    t.push(tuple![3i64, "diabetes", "metformin", "endo"]);
    t.push(tuple![4i64, "asthma", "albuterol", "resp"]);
    t.push(tuple![5i64, "migraine", "sumatriptan", "neuro"]);
    t.push(tuple![6i64, "hypertension", "enalapril", "cardio"]);
    catalog.register(t);
    catalog
}

fn main() {
    let server = literature();
    let catalog = patients();

    // select * from patient, literature
    // where patient.ward = 'cardio'
    //   and patient.diagnosis in literature.title
    //   and patient.drug in literature.abstract
    let q = SingleJoinQuery {
        relation: "patient".into(),
        local_pred: Pred::eq(ColId(3), "cardio"),
        selections: vec![],
        join: vec![
            ("diagnosis".into(), "title".into()),
            ("drug".into(), "abstract".into()),
        ],
        projection: Projection::Full,
    };

    let ts_schema = server.collection().schema();
    let prepared = prepare(&q, &catalog, ts_schema).expect("query prepares");
    let export = server.export_stats();
    let stats = prepared.statistics_from_export(&export, ts_schema);
    let params = textjoin::core::cost::params::CostParams::mercury(server.doc_count() as f64);

    println!(
        "Cardiology patients × medical literature ({} patients after the ward filter, {} documents)\n",
        prepared.filtered.len(),
        server.doc_count()
    );
    println!("Method costs (the diagnosis column repeats across patients, so probing pays):\n");
    let candidates = enumerate_methods(&params, &stats, q.projection, false);
    for cand in &candidates {
        println!("  {:<8} est {:>8.2}s  (probe columns {:?})", cand.label, cand.cost.total(), cand.probe_cols);
    }

    let best = &candidates[0];
    let ctx = ExecContext::new(&server);
    let out = textjoin::core::exec::execute_single(
        &ctx,
        &prepared,
        best,
        textjoin::core::methods::probe::ProbeSchedule::ProbeFirst,
    )
    .expect("method runs");
    println!(
        "\nChosen method {} sent {} text-system invocations and found {} (patient, paper) pairs:\n",
        best.label, out.report.text.invocations, out.table.len()
    );
    println!("{}", out.table);
}
