//! The loose-integration surface itself: what the database system sees of
//! the external text server — Mercury-style search strings, short vs long
//! form costs, the term cap, and the Section 8 extensions (batched
//! invocations, vocabulary statistics export).
//!
//! ```text
//! cargo run --example loose_integration
//! ```

use textjoin::text::expr::SearchExpr;
use textjoin::workload::world::{World, WorldSpec};

fn main() {
    let w = World::generate(WorldSpec {
        background_docs: 500,
        students: 80,
        ..WorldSpec::default()
    });
    let server = &w.server;
    let schema = server.collection().schema();
    println!(
        "External text source: {} documents, term cap M = {}\n",
        server.doc_count(),
        server.max_terms()
    );

    // --- 1. Searches are parsed from Mercury-style strings --------------
    println!("1. Boolean searches (each invocation costs c_i = 3 s):");
    for q in [
        "TI='query optimization'",
        "TI='text' and YR='1993'",
        "TI='retriev?'",
        "TI='query' near5 TI='optimization'",
    ] {
        server.reset_usage();
        let hits = server.search_str(q).expect("search ok");
        println!(
            "   {:<44} → {:>3} docs, {:.2} simulated s",
            q,
            hits.len(),
            server.usage().total_cost()
        );
    }

    // --- 2. Short vs long form -------------------------------------------
    println!("\n2. Transmission: short form is cheap, long form is 260× dearer:");
    server.reset_usage();
    let hits = server.search_str("TI='query optimization'").expect("search ok");
    let after_search = server.usage().total_cost();
    for d in hits.docs.iter().take(3) {
        server.retrieve(d.id).expect("retrieve ok");
    }
    println!(
        "   search shipped {} short forms ({:.2} s); 3 long retrievals added {:.2} s",
        hits.len(),
        after_search,
        server.usage().total_cost() - after_search
    );

    // --- 3. Term cap ------------------------------------------------------
    println!("\n3. The term cap rejects oversized disjunctions (semi-join chunking exists for this):");
    let au = schema.field_by_name("author").expect("author");
    let big = SearchExpr::or(
        (0..100)
            .map(|i| SearchExpr::term_in(&format!("name{i}"), au))
            .collect(),
    );
    match server.search(&big) {
        Err(e) => println!("   100-term search → {e}"),
        Ok(_) => unreachable!("cap is 70"),
    }

    // --- 4. Section 8 extensions ------------------------------------------
    println!("\n4. Batched invocation (one c_i for many queries):");
    server.reset_usage();
    let batch: Vec<SearchExpr> = ["query", "join", "text", "index"]
        .iter()
        .map(|t| SearchExpr::term_in(t, schema.field_by_name("title").expect("title")))
        .collect();
    let results = server.search_batch(&batch).expect("batch ok");
    println!(
        "   4 queries, {} total hits, {:.2} s (separate calls would pay 4 × c_i)",
        results.results.iter().map(|r| r.len()).sum::<usize>(),
        server.usage().total_cost()
    );

    println!("\n5. Vocabulary statistics export (free single-column probes):");
    server.reset_usage();
    let stats = server.export_stats();
    let ti = schema.field_by_name("title").expect("title");
    for word in ["query", "belief", "zebra"] {
        println!(
            "   fanout('{word}', title) = {} — answered with {} invocations",
            stats.fanout(word, ti),
            server.usage().invocations
        );
    }
}
