//! Multi-join optimization walkthrough (paper, Section 6): the Q5 query —
//! "1993 documents co-authored by a student and a faculty member from
//! another department" — planned in the three execution spaces and
//! executed against a generated digital-library world.
//!
//! ```text
//! cargo run --example digital_library
//! ```

use textjoin::core::cost::params::CostParams;
use textjoin::core::exec::plan_and_execute;
use textjoin::core::optimizer::multi::ExecutionSpace;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn main() {
    let world = World::generate(WorldSpec {
        background_docs: 800,
        students: 120,
        ..WorldSpec::default()
    });
    let q5 = paper::q5(&world);
    let params = CostParams::mercury(world.server.doc_count() as f64);

    println!(
        "Q5 over {} students × {} faculty × {} documents\n",
        world.catalog.table("student").unwrap().len(),
        world.catalog.table("faculty").unwrap().len(),
        world.server.doc_count()
    );

    for (label, space) in [
        ("traditional left-deep (text joins last)", ExecutionSpace::LeftDeep),
        ("PrL trees (probe nodes allowed)", ExecutionSpace::Prl),
        ("PrL + relational residuals (extension)", ExecutionSpace::PrlResiduals),
    ] {
        world.server.reset_usage();
        let (planned, outcome) =
            plan_and_execute(&q5, &world.catalog, &world.server, params, space)
                .expect("Q5 plans and executes");
        println!("── {label} ──");
        println!("plan (est {:.1}s):", planned.est_cost);
        for line in planned.plan.display(&q5).to_string().lines() {
            println!("  {line}");
        }
        println!(
            "measured {:.1}s — {} invocations, {} long docs, {} rows\n",
            outcome.total_cost,
            outcome.text.invocations,
            outcome.text.docs_long,
            outcome.table.len()
        );
    }
    println!(
        "All three spaces return the same rows; the richer spaces may find\n\
         cheaper plans, and are never worse (the left-deep trees remain in\n\
         the search space)."
    );
}
