//! Quickstart: build a tiny text collection and a relation, run one
//! foreign join with every applicable method, and compare simulated costs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use textjoin::core::methods::{ExecContext, Projection};
use textjoin::core::optimizer::single::enumerate_methods;
use textjoin::core::query::{prepare, SingleJoinQuery};
use textjoin::rel::catalog::Catalog;
use textjoin::rel::expr::Pred;
use textjoin::rel::schema::{ColId, RelSchema};
use textjoin::rel::table::Table;
use textjoin::rel::tuple;
use textjoin::rel::value::ValueType;
use textjoin::text::doc::{Document, TextSchema};
use textjoin::text::index::Collection;
use textjoin::text::server::TextServer;

fn main() {
    // --- The external text source: a bibliographic collection ----------
    let schema = TextSchema::bibliographic();
    let ti = schema.field_by_name("title").unwrap();
    let au = schema.field_by_name("author").unwrap();
    let mut coll = Collection::new(schema);
    coll.add_document(
        Document::new()
            .with(ti, "Belief Update in Knowledge Bases")
            .with(au, "Radhika"),
    );
    coll.add_document(
        Document::new()
            .with(ti, "Text Retrieval Systems")
            .with(au, "Gravano")
            .with(au, "Garcia"),
    );
    coll.add_document(
        Document::new()
            .with(ti, "Belief Update Semantics")
            .with(au, "Kao"),
    );
    let server = TextServer::new(coll);

    // --- The relational side: a student table --------------------------
    let mut catalog = Catalog::new();
    let mut student = Table::new(
        "student",
        RelSchema::from_columns(vec![
            ("name", ValueType::Str),
            ("area", ValueType::Str),
            ("year", ValueType::Int),
        ]),
    );
    student.push(tuple!["Radhika", "AI", 5i64]);
    student.push(tuple!["Gravano", "db", 4i64]);
    student.push(tuple!["Kao", "AI", 4i64]);
    student.push(tuple!["Pham", "AI", 6i64]);
    catalog.register(student);

    // --- The paper's Q1 -------------------------------------------------
    // select * from student, mercury
    // where student.area = 'AI' and student.year > 3
    //   and 'belief update' in mercury.title
    //   and student.name in mercury.author
    let q = SingleJoinQuery {
        relation: "student".into(),
        local_pred: Pred::and(vec![
            Pred::eq(ColId(1), "AI"), // area
            Pred::gt(ColId(2), 3i64), // year
        ]),
        selections: vec![("belief update".into(), "title".into())],
        join: vec![("name".into(), "author".into())],
        projection: Projection::Full,
    };

    let ts_schema = server.collection().schema();
    let prepared = prepare(&q, &catalog, ts_schema).expect("query prepares");
    println!(
        "Q1 over {} AI students and {} documents\n",
        prepared.filtered.len(),
        server.doc_count()
    );

    // --- Cost every applicable method, then execute each ---------------
    let export = server.export_stats();
    let stats = prepared.statistics_from_export(&export, ts_schema);
    let params = textjoin::core::cost::params::CostParams::mercury(server.doc_count() as f64);
    let candidates = enumerate_methods(&params, &stats, q.projection, false);

    println!("{:<10} {:>12} {:>12}  rows", "method", "est cost", "measured");
    for cand in &candidates {
        let ctx = ExecContext::new(&server);
        let out = textjoin::core::exec::execute_single(
            &ctx,
            &prepared,
            cand,
            textjoin::core::methods::probe::ProbeSchedule::ProbeFirst,
        )
        .expect("method runs");
        println!(
            "{:<10} {:>11.2}s {:>11.2}s  {}",
            cand.label,
            cand.cost.total(),
            out.report.total_cost(),
            out.report.output_rows
        );
    }

    // --- Show the winning method's answer -------------------------------
    let best = &candidates[0];
    let ctx = ExecContext::new(&server);
    let out = textjoin::core::exec::execute_single(
        &ctx,
        &prepared,
        best,
        textjoin::core::methods::probe::ProbeSchedule::ProbeFirst,
    )
    .expect("method runs");
    println!("\nOptimizer picks {} — result:\n{}", best.label, out.table);
}
