//! Property-based tests (proptest) on cross-crate invariants:
//! Boolean-algebra laws of the search engine, consistency between the
//! relational string matcher and the text index, cost-model bounds, and
//! the Theorem 5.3 probe-search guarantee.

use proptest::prelude::*;

use textjoin::core::cost::correlate::{distinct_docs, joint_fanout, joint_selectivity, total_docs};
use textjoin::core::cost::formulas::{cost_p_ts, cost_ts, cost_ts_naive};
use textjoin::core::cost::params::{CostParams, JoinStatistics, PredStats};
use textjoin::core::optimizer::single::{optimal_probe_bounded, optimal_probe_exhaustive};
use textjoin::rel::strmatch::contains_term;
use textjoin::text::doc::{DocId, Document, TextSchema};
use textjoin::text::expr::SearchExpr;
use textjoin::text::index::Collection;
use textjoin::text::server::TextServer;

const VOCAB: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

fn word() -> impl Strategy<Value = &'static str> {
    prop::sample::select(VOCAB)
}

/// A small random collection: each document is 1–6 words in the title and
/// 0–2 author words.
fn collection() -> impl Strategy<Value = Collection> {
    prop::collection::vec(
        (
            prop::collection::vec(word(), 1..6),
            prop::collection::vec(word(), 0..3),
        ),
        1..12,
    )
    .prop_map(|docs| {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").expect("title");
        let au = schema.field_by_name("author").expect("author");
        let mut coll = Collection::new(schema);
        for (title, authors) in docs {
            let mut d = Document::new().with(ti, title.join(" "));
            for a in authors {
                d.push(au, a);
            }
            coll.add_document(d);
        }
        coll
    })
}

proptest! {
    /// Search results agree with the relational string matcher document by
    /// document — the "consistent semantics" requirement RTP rests on.
    #[test]
    fn search_matches_contains_term(coll in collection(), w in word()) {
        let schema = coll.schema().clone();
        let ti = schema.field_by_name("title").expect("title");
        let server = TextServer::new(coll);
        let hits: std::collections::HashSet<DocId> =
            server.search(&SearchExpr::term_in(w, ti)).expect("search").ids().into_iter().collect();
        for d in 0..server.doc_count() {
            let id = DocId(d as u32);
            let doc = server.collection().document(id).expect("dense ids");
            let expected = doc.values(ti).iter().any(|v| contains_term(v, w));
            prop_assert_eq!(hits.contains(&id), expected, "doc {} word {}", d, w);
        }
    }

    /// Boolean algebra: AND is intersection, OR is union, NOT is difference
    /// of the single-term result sets.
    #[test]
    fn boolean_connectives_are_set_ops(coll in collection(), a in word(), b in word()) {
        let schema = coll.schema().clone();
        let ti = schema.field_by_name("title").expect("title");
        let server = TextServer::new(coll);
        let sa: std::collections::BTreeSet<DocId> =
            server.search(&SearchExpr::term_in(a, ti)).expect("a").ids().into_iter().collect();
        let sb: std::collections::BTreeSet<DocId> =
            server.search(&SearchExpr::term_in(b, ti)).expect("b").ids().into_iter().collect();

        let and = server.search(&SearchExpr::and(vec![
            SearchExpr::term_in(a, ti), SearchExpr::term_in(b, ti)])).expect("and");
        prop_assert_eq!(
            and.ids(), sa.intersection(&sb).copied().collect::<Vec<_>>());

        let or = server.search(&SearchExpr::or(vec![
            SearchExpr::term_in(a, ti), SearchExpr::term_in(b, ti)])).expect("or");
        prop_assert_eq!(
            or.ids(), sa.union(&sb).copied().collect::<Vec<_>>());

        let not = server.search(&SearchExpr::AndNot(
            Box::new(SearchExpr::term_in(a, ti)),
            Box::new(SearchExpr::term_in(b, ti)))).expect("not");
        prop_assert_eq!(
            not.ids(), sa.difference(&sb).copied().collect::<Vec<_>>());
    }

    /// A phrase is at most as frequent as each of its words, and any doc
    /// matching the phrase matches both words.
    #[test]
    fn phrase_subset_of_words(coll in collection(), a in word(), b in word()) {
        let schema = coll.schema().clone();
        let ti = schema.field_by_name("title").expect("title");
        let server = TextServer::new(coll);
        let phrase = format!("{a} {b}");
        let ph = server.search(&SearchExpr::term_in(&phrase, ti)).expect("phrase");
        let both = server.search(&SearchExpr::and(vec![
            SearchExpr::term_in(a, ti), SearchExpr::term_in(b, ti)])).expect("and");
        let both_set: std::collections::HashSet<DocId> = both.ids().into_iter().collect();
        for id in ph.ids() {
            prop_assert!(both_set.contains(&id));
        }
    }

    /// Cost-model bounds: U ≤ V, U ≤ D, both non-negative.
    #[test]
    fn distinct_docs_bounded(n in 0.0f64..10_000.0, f in 0.0f64..50.0, d in 1.0f64..100_000.0) {
        let u = distinct_docs(n, f, d);
        let v = total_docs(n, f);
        prop_assert!(u >= -1e-9);
        prop_assert!(u <= v + 1e-9);
        prop_assert!(u <= d + 1e-9);
    }

    /// Joint statistics shrink (or hold) as g grows.
    #[test]
    fn correlation_monotone_in_g(
        sels in prop::collection::vec(0.0f64..1.0, 1..6),
        fans in prop::collection::vec(0.0f64..20.0, 1..6),
        d in 100.0f64..10_000.0,
    ) {
        for g in 1..sels.len() {
            prop_assert!(joint_selectivity(&sels, g + 1) <= joint_selectivity(&sels, g) + 1e-12);
        }
        for g in 1..fans.len() {
            // Fanouts < D make the normalized product shrink as well.
            if fans.iter().all(|&f| f <= d) {
                prop_assert!(joint_fanout(&fans, d, g + 1) <= joint_fanout(&fans, d, g) + 1e-9);
            }
        }
    }

    /// The distinct-tuple TS variant never costs more than naive TS.
    #[test]
    fn distinct_ts_never_worse(
        n in 1.0f64..5_000.0,
        dup in 1.0f64..10.0,
        s in 0.01f64..1.0,
        f in 0.0f64..10.0,
    ) {
        let p = CostParams::mercury(10_000.0);
        let stats = JoinStatistics {
            n,
            n_k: (n / dup).max(1.0),
            preds: vec![PredStats::simple(s, f, (n / dup).max(1.0))],
            sel_fanout: 10_000.0,
            sel_postings: 0.0,
            sel_terms: 0,
            needs_long: false,
            short_form_sufficient: true,
        };
        prop_assert!(cost_ts(&p, &stats).total() <= cost_ts_naive(&p, &stats).total() + 1e-9);
    }

    /// Theorem 5.3: under the fully-correlated model (g = 1) the bounded
    /// probe search (subsets of ≤ 2 columns) finds the exhaustive optimum.
    #[test]
    fn theorem_5_3_random_instances(
        pred_params in prop::collection::vec(
            (0.01f64..1.0, 0.0f64..20.0, 1.0f64..2_000.0), 1..6),
        n in 10.0f64..10_000.0,
    ) {
        let p = CostParams::mercury(50_000.0); // g = 1
        let stats = JoinStatistics {
            n,
            n_k: n,
            preds: pred_params
                .iter()
                .map(|&(s, f, d)| PredStats::simple(s, f, d.min(n)))
                .collect(),
            sel_fanout: 50_000.0,
            sel_postings: 0.0,
            sel_terms: 0,
            needs_long: false,
            short_form_sufficient: true,
        };
        let (_, e) = optimal_probe_exhaustive(&p, &stats, cost_p_ts).expect("k ≥ 1");
        let (cols, b) = optimal_probe_bounded(&p, &stats, cost_p_ts).expect("k ≥ 1");
        prop_assert!((e.total() - b.total()).abs() < 1e-6,
            "bounded {} ({:?}) vs exhaustive {}", b.total(), cols, e.total());
    }
}

// ---------------------------------------------------------------------
// Plan-quality: on exact-stats uniform worlds, EXPLAIN ANALYZE must
// report Q-error 1.0 and the counterfactual regret must be zero.
// ---------------------------------------------------------------------

/// A uniform single-relation world the cost model is *exact* on: one
/// relation row whose key matches exactly `f` documents, an optional
/// selection term present in every document (so the selection scaling
/// factor is 1 and intersections are exact), no faults, n = 1 (the
/// distinct-docs formula `D(1-(1-F/D)^n)` is exact only at n = 1).
fn uniform_world(
    f: usize,
    bg: usize,
    with_selection: bool,
    projection: textjoin::core::methods::Projection,
) -> (
    textjoin::rel::catalog::Catalog,
    TextServer,
    textjoin::core::optimizer::plan::MultiJoinQuery,
) {
    use textjoin::core::optimizer::plan::{ForeignSpec, MultiJoinQuery, RelSpec};
    use textjoin::rel::catalog::Catalog;
    use textjoin::rel::expr::Pred;
    use textjoin::rel::schema::RelSchema;
    use textjoin::rel::table::Table;
    use textjoin::rel::value::ValueType;
    use textjoin::rel::tuple;

    let mut catalog = Catalog::new();
    let mut r = Table::new(
        "r",
        RelSchema::from_columns(vec![("name", ValueType::Str)]),
    );
    r.push(tuple!["alpha"]);
    catalog.register(r);

    let schema = TextSchema::bibliographic();
    let ti = schema.field_by_name("title").expect("title");
    let au = schema.field_by_name("author").expect("author");
    let mut coll = Collection::new(schema);
    for _ in 0..f {
        coll.add_document(Document::new().with(ti, "common").with(au, "alpha"));
    }
    for _ in 0..bg {
        coll.add_document(Document::new().with(ti, "common").with(au, "beta"));
    }
    let q = MultiJoinQuery {
        relations: vec![RelSpec {
            name: "r".into(),
            local_pred: Pred::True,
        }],
        rel_joins: vec![],
        selections: if with_selection {
            vec![("common".into(), "title".into())]
        } else {
            vec![]
        },
        foreign: vec![ForeignSpec {
            rel: 0,
            column: "name".into(),
            field: "author".into(),
        }],
        projection,
    };
    (catalog, TextServer::new(coll), q)
}

proptest! {
    /// On a fault-free world whose exported statistics describe the
    /// corpus exactly, the planner's estimate matches the booked actuals
    /// to within float noise (per-query cost and rows Q-error == 1.0),
    /// and no counterfactual text-join method measures cheaper than the
    /// chosen one (true regret == 0) — for every generated workload.
    #[test]
    fn exact_stats_mean_unit_q_error_and_zero_regret(
        f in 1usize..5,
        bg in 0usize..7,
        with_selection in proptest::bool::ANY,
        full in proptest::bool::ANY,
    ) {
        use textjoin::core::exec::{execute_prepared, prepare_plan, ExecHooks};
        use textjoin::core::methods::Projection;
        use textjoin::core::optimizer::multi::{
            text_join_candidates, with_text_method, ExecutionSpace, PlannedQuery,
        };

        let projection = if full { Projection::Full } else { Projection::RelOnly };
        let (catalog, server, q) = uniform_world(f, bg, with_selection, projection);
        let params = CostParams::mercury(server.doc_count() as f64);
        let (input, planned) = prepare_plan(
            &q, &catalog, &server, params, ExecutionSpace::PrlResiduals, None, None,
        ).expect("plans");
        let hooks = ExecHooks { analyze: true, ..ExecHooks::default() };
        let outcome = execute_prepared(&input, &planned, &catalog, &server, &hooks)
            .expect("executes");
        let pq = outcome.plan_quality.as_ref().expect("analyze was on");
        prop_assert!(
            (pq.cost_q - 1.0).abs() < 1e-9,
            "cost q {} on exact stats (f={f} bg={bg} sel={with_selection} full={full})\n{}",
            pq.cost_q, pq.render()
        );
        prop_assert!(
            (pq.rows_q - 1.0).abs() < 1e-9,
            "rows q {} on exact stats\n{}", pq.rows_q, pq.render()
        );
        // Counterfactual regret: graft every enumerated text-join method
        // into the same tree and replay each on its own fresh sandbox —
        // none may measure cheaper than the chosen plan.
        if let Some(cands) = text_join_candidates(&input, &planned.plan) {
            for c in cands {
                let Some(variant) = with_text_method(&planned.plan, c.kind, &c.probe_cols)
                else { continue };
                let vplanned = PlannedQuery {
                    plan: variant,
                    est_cost: planned.est_cost,
                    est_rows: planned.est_rows,
                };
                let vbox = TextServer::new(server.collection().clone());
                if let Ok(vout) = execute_prepared(
                    &input, &vplanned, &catalog, &vbox, &ExecHooks::default(),
                ) {
                    prop_assert!(
                        outcome.total_cost <= vout.total_cost + 1e-9,
                        "regret: chosen {} but {} measured {}",
                        outcome.total_cost, c.label, vout.total_cost
                    );
                }
            }
        }
    }
}
