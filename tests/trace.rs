//! Trace determinism and span hygiene.
//!
//! The flight recorder's JSONL serialization is the repo's determinism
//! contract made inspectable: two identical runs — same world seed, same
//! fault plan, same query — must serialize byte-identical traces. And the
//! span stack must stay balanced on *every* exit path: a shard dying
//! mid-gather unwinds through guard drops, never leaving an open span.

use std::rc::Rc;

use textjoin::core::cost::params::CostParams;
use textjoin::core::exec::plan_and_execute;
use textjoin::core::methods::ExecContext;
use textjoin::core::optimizer::multi::ExecutionSpace;
use textjoin::core::retry::{RetryBudget, RetryPolicy};
use textjoin::obs::{EventKind, JsonlSink, Recorder, RingSink};
use textjoin::text::faults::{FaultKinds, FaultPlan};
use textjoin::text::server::TextServer;
use textjoin::text::shard::ShardedTextServer;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn compact_world(seed: u64) -> World {
    World::generate(WorldSpec {
        seed,
        background_docs: 120,
        students: 30,
        projects: 10,
        ..WorldSpec::default()
    })
}

/// One fixed chaos run, traced: Q5 planned and executed against a fresh
/// faulted server with a JSONL recorder attached. Returns the full trace.
fn golden_chaos_trace(w: &World) -> String {
    let params = CostParams::mercury(w.server.doc_count() as f64);
    let mut server = TextServer::new(w.server.collection().clone());
    server.set_fault_plan(FaultPlan::transient(0xC0FFEE, 0.2, 2));
    let sink = Rc::new(JsonlSink::new());
    server.set_recorder(Some(Recorder::new(sink.clone())));
    let q5 = paper::q5(w);
    plan_and_execute(&q5, &w.catalog, &server, params, ExecutionSpace::PrlResiduals)
        .expect("bounded faults never exhaust retries");
    sink.contents()
}

#[test]
fn golden_chaos_trace_is_byte_identical_across_runs() {
    let w = compact_world(7);
    let a = golden_chaos_trace(&w);
    let b = golden_chaos_trace(&w);
    assert_eq!(a, b, "two identical runs must serialize identical traces");
    // The golden trace must actually exercise the taxonomy: planner
    // decisions, spans, server calls, and the retry/backoff machinery.
    for needle in [
        "\"type\":\"planner\"",
        "\"rows\":",
        "\"postings\":",
        "\"type\":\"span_begin\"",
        "\"type\":\"span_end\"",
        "\"type\":\"call\"",
        "\"type\":\"retry\"",
        "\"type\":\"backoff\"",
        "\"label\":\"plan\"",
    ] {
        assert!(a.contains(needle), "golden trace is missing {needle}");
    }
    // Dense sequence numbers: line i carries seq i.
    for (i, line) in a.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},")),
            "line {i} out of sequence: {line}"
        );
    }
}

/// One fixed replicated chaos run recorded twice from the same event
/// stream: the full JSONL and a 1/16 head-sampled JSONL. Returns both.
fn golden_sampled_pair(w: &World) -> (String, String) {
    use textjoin::obs::{Event, SampledSink, SamplePolicy, Sink};

    struct Tee {
        full: Rc<JsonlSink>,
        sampled: Rc<SampledSink>,
    }
    impl Sink for Tee {
        fn record(&self, ev: &Event) {
            self.full.record(ev);
            self.sampled.record(ev);
        }
    }

    let schema = w.server.collection().schema();
    let p = textjoin::core::query::prepare(&paper::q3(w), &w.catalog, schema)
        .expect("q3 prepares");
    let fj = p.foreign_join();
    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    let dead = s.primary_of(2);
    for i in 0..4 {
        for r in 0..2 {
            let plan = if (i, r) == (2, dead) {
                FaultPlan::dead(11)
            } else {
                FaultPlan::transient(11 ^ ((i as u64) << 24) ^ ((r as u64) << 32), 0.1, 2)
            };
            s.replica_mut(i, r).set_fault_plan(plan);
        }
    }
    let full = Rc::new(JsonlSink::new());
    let kept = Rc::new(JsonlSink::new());
    let sampled = Rc::new(SampledSink::new(
        kept.clone(),
        SamplePolicy::one_in(0xCAFE, 16),
    ));
    s.set_recorder(Some(Recorder::new(Rc::new(Tee {
        full: full.clone(),
        sampled,
    }))));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(&s, &budget);
    let _ = textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true);
    (full.contents(), kept.contents())
}

#[test]
fn golden_sampled_trace_is_byte_identical_and_a_subsequence() {
    let w = compact_world(7);
    let (full_a, sampled_a) = golden_sampled_pair(&w);
    let (full_b, sampled_b) = golden_sampled_pair(&w);
    assert_eq!(full_a, full_b, "full golden trace must be deterministic");
    assert_eq!(
        sampled_a, sampled_b,
        "sampled golden trace must be deterministic"
    );

    // The sampled trace is a strict, order-preserving subsequence of the
    // full trace: every kept line exists verbatim in the full trace, in
    // the same relative order.
    let mut full_lines = full_a.lines();
    let mut matched = 0usize;
    for kept_line in sampled_a.lines() {
        assert!(
            full_lines.any(|l| l == kept_line),
            "sampled line not found in order in the full trace: {kept_line}"
        );
        matched += 1;
    }
    let full_count = full_a.lines().count();
    assert!(matched > 0 && matched < full_count / 2, "sampling must actually drop events ({matched} of {full_count} kept)");

    // The chaos signal survives sampling.
    for needle in [
        "\"type\":\"failover\"",
        "\"type\":\"circuit_open\"",
        "\"err\":",
    ] {
        assert!(
            sampled_a.contains(needle),
            "sampled trace is missing {needle}"
        );
    }
}

#[test]
fn parsed_golden_traces_round_trip_byte_identically() {
    use textjoin::obs::parse_jsonl;

    let w = compact_world(7);
    let full = golden_chaos_trace(&w);
    let (grid_full, grid_sampled) = golden_sampled_pair(&w);
    for (label, text) in [
        ("single-server chaos", &full),
        ("replicated full", &grid_full),
        ("replicated sampled", &grid_sampled),
    ] {
        let events = parse_jsonl(text).unwrap_or_else(|e| panic!("{label}: {e}"));
        let rebuilt: String = events.iter().map(|e| e.to_jsonl() + "\n").collect();
        assert_eq!(
            &rebuilt, text,
            "{label}: parse → serialize must reproduce the trace byte for byte"
        );
    }
}

#[test]
fn dead_shard_mid_gather_leaves_no_open_span() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let p = textjoin::core::query::prepare(&paper::q3(&w), &w.catalog, schema)
        .expect("q3 prepares");
    let fj = p.foreign_join();

    // Shard 2 faults on every operation, unbounded — the gather dies
    // mid-scatter after shards 0 and 1 answered.
    let mut s = ShardedTextServer::new(w.server.collection(), 4, 0x5AD);
    s.shard_mut(2)
        .set_fault_plan(FaultPlan::random(77, 1.0, FaultKinds::transient_only(), 0));
    let sink = Rc::new(RingSink::unbounded());
    let rec = Recorder::new(sink.clone());
    s.set_recorder(Some(rec.clone()));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(&s, &budget);

    for method in ["TS", "SJ", "P+RTP"] {
        let err = match method {
            "TS" => textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true).err(),
            "SJ" => textjoin::core::methods::sj::semi_join(&ctx, &fj).err(),
            _ => textjoin::core::methods::probe::probe_rtp(&ctx, &fj, &[0]).err(),
        };
        assert!(err.is_some(), "{method} must fail with shard 2 dead");
        assert_eq!(
            rec.open_spans(),
            0,
            "{method}: the error unwind left a span open"
        );
    }

    // Begin/end balance holds event by event, not just at the end.
    let mut begins = 0i64;
    let mut ends = 0i64;
    for ev in sink.events() {
        match ev.kind {
            EventKind::SpanBegin { .. } => begins += 1,
            EventKind::SpanEnd { .. } => {
                ends += 1;
                assert!(ends <= begins, "span ended before it began");
            }
            _ => {}
        }
    }
    assert!(begins > 0, "the failed gathers must still open spans");
    assert_eq!(begins, ends, "every opened span must close");
}

/// One fixed serve session, traced: a 4-tenant stream with a starved
/// budget, a tight queue, and repeated specs over a replicated server
/// with a dead primary — so the trace exercises the full serve taxonomy
/// (admissions, sheds, budget refusals, cache hits) next to the existing
/// call/retry/backoff machinery. Returns the JSONL and its explain
/// rendering.
fn golden_serve_trace(w: &World) -> (String, String) {
    use textjoin::core::serve::{Backend, ServeConfig, ServeSession, TenantSpec};
    use textjoin::obs::Sink;

    let params = CostParams::mercury(w.server.doc_count() as f64);
    let mut server = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    let dead = server.primary_of(2);
    server.replica_mut(2, dead).set_fault_plan(FaultPlan::dead(77));
    let mut cfg = ServeConfig::new(params);
    cfg.queue_cap = 2;
    cfg.quantum = 40.0;
    cfg.degrade_depth = 2;
    let tenants = vec![
        TenantSpec::new("alpha", 1e9, 2),
        TenantSpec::new("beta", 1e9, 1),
        TenantSpec::new("gamma", 40.0, 0),
        TenantSpec::new("delta", 1e9, 3),
    ];
    let q5 = paper::q5(w);
    let q6 = paper::q6(w);
    let stream = vec![
        (0, q5.clone()),
        (1, q6.clone()),
        (2, q5.clone()),
        (0, q5.clone()),
        (3, q5.clone()),
        (1, q6.clone()),
        (3, q5.clone()),
        (0, q5),
    ];
    let report =
        ServeSession::new(Backend::Elastic(&mut server), &w.catalog, tenants, cfg).run(&stream);
    let sink = JsonlSink::new();
    for ev in &report.trace {
        sink.record(ev);
    }
    (sink.contents(), textjoin::obs::render(&report.trace))
}

#[test]
fn golden_serve_trace_is_byte_identical_and_renders_serve_events() {
    let w = compact_world(7);
    let (a, ea) = golden_serve_trace(&w);
    let (b, eb) = golden_serve_trace(&w);
    assert_eq!(a, b, "two identical sessions must serialize identical traces");
    assert_eq!(ea, eb, "explain renderings must match byte-for-byte");

    // The serve taxonomy is present in the JSONL...
    for needle in [
        "\"type\":\"admit\"",
        "\"type\":\"shed\"",
        "\"type\":\"budget_exhausted\"",
        "\"type\":\"cache_hit\"",
        "\"type\":\"call\"",
        "\"type\":\"retry\"",
    ] {
        assert!(a.contains(needle), "golden serve trace is missing {needle}");
    }
    // ...and explain renders each serve event with its dedicated line,
    // not a generic fallthrough.
    for needle in [
        "> admit tenant",
        "! shed tenant",
        "! budget exhausted tenant",
        "= cache hit [",
    ] {
        assert!(ea.contains(needle), "explain rendering is missing {needle:?}");
    }

    // The serialized serve events round-trip through the parser.
    let parsed = textjoin::obs::parse_jsonl(&a).expect("serve trace parses");
    let resink = JsonlSink::new();
    for ev in &parsed {
        use textjoin::obs::Sink;
        resink.record(ev);
    }
    assert_eq!(resink.contents(), a, "serve trace round-trips byte-identically");
}
