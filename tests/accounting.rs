//! Integration: end-to-end cost-accounting invariants across the server,
//! the join methods, and the executors.

use textjoin::core::cost::params::CostParams;
use textjoin::core::exec::{canonical_rows, plan_and_execute};
use textjoin::core::methods::probe::ProbeSchedule;
use textjoin::core::methods::ExecContext;
use textjoin::core::optimizer::multi::ExecutionSpace;
use textjoin::core::optimizer::single::enumerate_methods;
use textjoin::core::query::prepare;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn world() -> World {
    World::generate(WorldSpec {
        background_docs: 200,
        students: 50,
        projects: 15,
        ..WorldSpec::default()
    })
}

#[test]
fn method_cost_decomposes_into_server_charges() {
    let w = world();
    let schema = w.server.collection().schema();
    let p = prepare(&paper::q3(&w), &w.catalog, schema).expect("q3 prepares");
    let export = w.server.export_stats();
    let stats = p.statistics_from_export(&export, schema);
    let params = CostParams::mercury(w.server.doc_count() as f64);
    for cand in enumerate_methods(&params, &stats, paper::q3(&w).projection, false) {
        w.server.reset_usage();
        let ctx = ExecContext::new(&w.server);
        let out = textjoin::core::exec::execute_single(&ctx, &p, &cand, ProbeSchedule::ProbeFirst)
            .expect("runs");
        let u = w.server.usage();
        let k = w.server.constants();
        let expected_text = k.c_i * u.invocations as f64
            + k.c_p * u.postings_processed as f64
            + k.c_s * u.docs_short as f64
            + k.c_l * u.docs_long as f64
            + u.time_backoff;
        assert!(
            (out.report.text.total_cost() - expected_text).abs() < 1e-6,
            "{}: reported text cost must equal server charges",
            cand.label
        );
        assert!(
            (out.report.total_cost()
                - (expected_text + ctx.c_a * out.report.rtp_comparisons as f64))
                .abs()
                < 1e-6,
            "{}: total = text + c_a × comparisons",
            cand.label
        );
    }
}

#[test]
fn sampling_cost_is_separate_from_execution() {
    let w = world();
    let schema = w.server.collection().schema();
    let p = prepare(&paper::q1(&w), &w.catalog, schema).expect("q1 prepares");
    w.server.reset_usage();
    let stats = p
        .statistics_by_sampling(&w.server, 5)
        .expect("sampling works");
    let sampling_cost = w.server.usage().total_cost();
    assert!(sampling_cost > 0.0, "sampling is charged");
    assert!(stats.preds[0].selectivity >= 0.0);

    // Execution measured from a clean slate is unaffected by sampling.
    w.server.reset_usage();
    let ctx = ExecContext::new(&w.server);
    let out = textjoin::core::methods::ts::tuple_substitution(&ctx, &p.foreign_join(), true)
        .expect("TS runs");
    assert!((out.report.text.total_cost() - w.server.usage().total_cost()).abs() < 1e-9);
}

#[test]
fn multi_join_outcome_cost_matches_components() {
    let w = world();
    let params = CostParams::mercury(w.server.doc_count() as f64);
    let q5 = paper::q5(&w);
    for space in [
        ExecutionSpace::LeftDeep,
        ExecutionSpace::Prl,
        ExecutionSpace::PrlResiduals,
    ] {
        w.server.reset_usage();
        let (_, outcome) =
            plan_and_execute(&q5, &w.catalog, &w.server, params, space).expect("q5 runs");
        assert!(outcome.total_cost >= outcome.text.total_cost());
        assert!(outcome.total_cost.is_finite());
    }
}

#[test]
fn execution_spaces_agree_on_q5_answer() {
    let w = world();
    let params = CostParams::mercury(w.server.doc_count() as f64);
    let q5 = paper::q5(&w);
    let mut canon: Option<Vec<String>> = None;
    for space in [
        ExecutionSpace::LeftDeep,
        ExecutionSpace::Prl,
        ExecutionSpace::PrlResiduals,
    ] {
        let (_, outcome) =
            plan_and_execute(&q5, &w.catalog, &w.server, params, space).expect("q5 runs");
        let rows = canonical_rows(&outcome.table);
        match &canon {
            None => canon = Some(rows),
            Some(expected) => assert_eq!(&rows, expected, "space {space:?} differs"),
        }
    }
}

#[test]
fn term_cap_forces_sj_chunking_without_changing_answers() {
    let w = world();
    let schema = w.server.collection().schema();
    let p = prepare(&paper::q2(&w), &w.catalog, schema).expect("q2 prepares");
    let ctx = ExecContext::new(&w.server);
    let unchunked = textjoin::core::methods::sj::semi_join(&ctx, &p.foreign_join())
        .expect("SJ runs");

    // Same collection under a tiny term cap.
    let mut small = textjoin::text::server::TextServer::new(w.server.collection().clone());
    small.set_max_terms(3);
    let ctx2 = ExecContext::new(&small);
    let chunked =
        textjoin::core::methods::sj::semi_join(&ctx2, &p.foreign_join()).expect("SJ runs");
    assert!(chunked.report.text.invocations > unchunked.report.text.invocations);
    assert_eq!(
        canonical_rows(&chunked.table),
        canonical_rows(&unchunked.table)
    );
}

#[test]
fn batch_extension_reduces_invocation_cost() {
    let w = world();
    let schema = w.server.collection().schema();
    let au = schema.field_by_name("author").expect("author field");
    let student = w.catalog.table("student").expect("student");
    let names: Vec<String> = student
        .iter()
        .take(10)
        .map(|r| {
            r.get(student.col("name"))
                .as_str()
                .expect("names are strings")
                .to_owned()
        })
        .collect();
    let exprs: Vec<textjoin::text::expr::SearchExpr> = names
        .iter()
        .map(|n| textjoin::text::expr::SearchExpr::term_in(n, au))
        .collect();

    w.server.reset_usage();
    let batch = w.server.search_batch(&exprs).expect("batch runs");
    let batched_cost = w.server.usage().total_cost();
    assert_eq!(batch.results.len(), 10);

    w.server.reset_usage();
    for e in &exprs {
        w.server.search(e).expect("search runs");
    }
    let separate_cost = w.server.usage().total_cost();
    assert!(
        batched_cost < separate_cost,
        "batching must amortize invocations: {batched_cost} vs {separate_cost}"
    );
    // Exactly 9 invocation charges rebated.
    assert!(
        (separate_cost - batched_cost - 9.0 * w.server.constants().c_i).abs() < 1.0,
        "rebate ≈ 9 × c_i"
    );
}

#[test]
fn stats_export_eliminates_probe_invocations() {
    // Section 8: with exported vocabulary statistics, single-column probe
    // questions are answered for free.
    let w = world();
    let export = w.server.export_stats();
    let au = w
        .server
        .collection()
        .schema()
        .field_by_name("author")
        .expect("author");
    w.server.reset_usage();
    let student = w.catalog.table("student").expect("student");
    let mut occurs = 0;
    for r in student.iter() {
        let name = r.get(student.col("name")).as_str().expect("string");
        let word = textjoin::text::token::normalize_word(name);
        if export.occurs(&word, au) {
            occurs += 1;
        }
    }
    assert!(occurs > 0, "some students publish");
    assert_eq!(
        w.server.usage().invocations,
        0,
        "no probes were sent to answer occurrence questions"
    );
}

// ---------------------------------------------------------------------
// Sharded scatter/gather accounting
// ---------------------------------------------------------------------

#[test]
fn sharded_answers_match_single_server_with_per_shard_invoice() {
    use textjoin::text::shard::ShardedTextServer;
    use textjoin::text::TextService;

    let w = world();
    let schema = w.server.collection().schema();
    let p = prepare(&paper::q3(&w), &w.catalog, schema).expect("q3 prepares");
    let fj = p.foreign_join();

    // Plain server baseline.
    w.server.reset_usage();
    let ctx = ExecContext::new(&w.server);
    let plain = textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true)
        .expect("TS runs");

    // Same join over 4 shards: identical multiset, n_shards × the
    // invocation count (every logical search scatters to every shard).
    const N_SHARDS: u64 = 4;
    let sharded = ShardedTextServer::new(w.server.collection(), N_SHARDS as usize, 0x5AD);
    let sctx = ExecContext::new(&sharded);
    let out = textjoin::core::methods::ts::tuple_substitution(&sctx, &fj, true)
        .expect("sharded TS runs");
    assert_eq!(
        canonical_rows(&out.table),
        canonical_rows(&plain.table),
        "sharding must not change the join answer"
    );
    let agg = sharded.usage();
    assert_eq!(
        agg.invocations,
        N_SHARDS * plain.report.text.invocations,
        "each logical search is invoiced once per shard"
    );
    // Transmissions are partitioned, not duplicated: the same documents
    // come back, each from exactly one shard.
    assert_eq!(agg.docs_short, plain.report.text.docs_short);
    assert_eq!(agg.docs_long, plain.report.text.docs_long);
    // Postings are partitioned too, and may come in *under* the single
    // server: a shard whose sublist for the first conjunct is empty
    // short-circuits its AND before reading the remaining lists.
    assert!(agg.postings_processed <= plain.report.text.postings_processed);
}

#[test]
fn sharded_aggregate_ledger_is_exactly_the_sum_of_shard_ledgers() {
    use textjoin::text::shard::ShardedTextServer;
    use textjoin::text::TextService;

    let w = world();
    let schema = w.server.collection().schema();
    let p = prepare(&paper::q4(&w), &w.catalog, schema).expect("q4 prepares");
    let fj = p.foreign_join();

    let sharded = ShardedTextServer::new(w.server.collection(), 4, 0x5AD);
    let ctx = ExecContext::new(&sharded);
    let out = textjoin::core::methods::probe::probe_rtp(&ctx, &fj, &[0])
        .expect("sharded P+RTP runs");

    // Fault-free run: the aggregate ledger decomposes exactly into the
    // sum of the per-shard ledgers — no hidden charges, nothing dropped.
    let agg = sharded.usage();
    let mut sum_inv = 0u64;
    let mut sum_cost = 0.0;
    for i in 0..sharded.shard_count() {
        let su = sharded.shard_usage(i);
        assert!(su.invocations > 0, "shard {i} took part in the scatter");
        sum_inv += su.invocations;
        sum_cost += su.total_cost();
    }
    assert_eq!(agg.invocations, sum_inv);
    assert!((agg.total_cost() - sum_cost).abs() < 1e-9);

    // And the method report's exact decomposition still holds on the
    // aggregate: shard charges + backoff + c_a × comparisons.
    let k = sharded.constants();
    let u = &out.report.text;
    let expected_text = k.c_i * u.invocations as f64
        + k.c_p * u.postings_processed as f64
        + k.c_s * u.docs_short as f64
        + k.c_l * u.docs_long as f64
        + u.time_backoff;
    assert!((u.total_cost() - expected_text).abs() < 1e-6);
    assert!(
        (out.report.total_cost() - (expected_text + ctx.c_a * out.report.rtp_comparisons as f64))
            .abs()
            < 1e-6
    );
}

#[test]
fn replicated_backoff_lands_in_both_the_aggregate_and_the_shard_invoice() {
    use textjoin::core::retry::{RetryBudget, RetryPolicy};
    use textjoin::text::faults::FaultPlan;
    use textjoin::text::server::Usage;
    use textjoin::text::shard::ShardedTextServer;
    use textjoin::text::TextService;

    let w = world();
    let schema = w.server.collection().schema();
    let p = prepare(&paper::q3(&w), &w.catalog, schema).expect("q3 prepares");
    let fj = p.foreign_join();

    // 4 shards × 2 replicas with shard 2's primary permanently dead:
    // every scatter to shard 2 pays failover retries and backoff.
    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    let dead = s.primary_of(2);
    s.replica_mut(2, dead).set_fault_plan(FaultPlan::dead(77));
    // Backoff charged through both entry points — the legacy shard-level
    // one (lands on the primary) and the replica-level one failover legs
    // use — before the organic workload runs on top.
    s.charge_shard_backoff(1, 2.5);
    s.charge_replica_backoff(3, 1, 4.0);
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(&s, &budget);
    let out = textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true)
        .expect("failover absorbs the dead primary");

    // The answer is still the unreplicated answer.
    let plain = textjoin::core::methods::ts::tuple_substitution(
        &ExecContext::new(&w.server),
        &fj,
        true,
    )
    .expect("plain TS runs");
    assert_eq!(canonical_rows(&out.table), canonical_rows(&plain.table));

    // The no-drift pin for charge_shard_backoff / charge_replica_backoff:
    // because the shard invoice sums every replica of the shard and the
    // aggregate sums the same ledgers, retries and backoff land in both
    // views at once — the aggregate must equal the shard-invoice sum
    // field for field, manual charges and failover charges alike.
    let agg = s.usage();
    let mut sum = Usage::default();
    for i in 0..s.shard_count() {
        sum.accumulate(&s.shard_usage(i));
    }
    assert_eq!(agg.retries, sum.retries, "retries cannot drift");
    assert!(
        (agg.time_backoff - sum.time_backoff).abs() < 1e-9,
        "backoff seconds cannot drift"
    );
    assert!(agg.retries > 2, "the dead primary forced organic retries too");
    assert!(agg.time_backoff > 6.5, "manual 6.5s + organic failover backoff");

    // And the metrics-snapshot bridge reports exactly the ledger's
    // numbers, so printed tables can never disagree with the invoice.
    let snap = agg.metrics_snapshot();
    assert_eq!(snap.counter("usage.retries"), agg.retries);
    assert_eq!(snap.counter("usage.faults"), agg.faults);
    assert!((snap.value("usage.time_backoff") - agg.time_backoff).abs() < 1e-12);
}

#[test]
fn cancelled_hedge_rebate_keeps_every_accounting_view_in_agreement() {
    use textjoin::core::retry::{RetryBudget, RetryPolicy};
    use textjoin::core::sched::{SchedConfig, Scheduler};
    use textjoin::text::faults::FaultPlan;
    use textjoin::text::server::Usage;
    use textjoin::text::shard::ShardedTextServer;
    use textjoin::text::TextService;

    let w = world();
    let schema = w.server.collection().schema();
    let p = prepare(&paper::q3(&w), &w.catalog, schema).expect("q3 prepares");
    let fj = p.foreign_join();

    // 4 shards × 2 replicas, every primary on a latency-only slow plan:
    // primaries always answer, but slow legs race a hedge read on the
    // secondary and the loser's whole charge is rebated mid-flight.
    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    for i in 0..s.shard_count() {
        let pri = s.primary_of(i);
        s.replica_mut(i, pri)
            .set_fault_plan(FaultPlan::slow(0xC0DE + i as u64, 0.5));
    }
    let budget = RetryBudget::new(RetryPolicy::standard());
    let sched = Scheduler::new(SchedConfig::new(0x7E97));
    let before = s.usage();
    let ctx = ExecContext::with_budget(&s, &budget).with_transport(&sched);
    let out = textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true)
        .expect("slow replicas never fail the join");

    // The machinery under test actually engaged, and every race had
    // exactly one cancelled loser.
    assert!(sched.hedges() > 0, "no hedge fired — the slow plan is too tame");
    assert_eq!(sched.hedges(), sched.cancels());

    // Same answer as the unreplicated baseline.
    let plain =
        textjoin::core::methods::ts::tuple_substitution(&ExecContext::new(&w.server), &fj, true)
            .expect("plain TS runs");
    assert_eq!(canonical_rows(&out.table), canonical_rows(&plain.table));

    // View 1 vs view 2: the method's reported ledger must equal the
    // external `Usage::since` delta even though race losers were charged
    // and then rebated inside the measurement window.
    let delta = s.usage().since(&before);
    assert_eq!(delta.invocations, out.report.text.invocations);
    assert_eq!(delta.docs_short, out.report.text.docs_short);
    assert_eq!(delta.docs_long, out.report.text.docs_long);
    assert!((delta.total_cost() - out.report.text.total_cost()).abs() < 1e-9);

    // View 3: the aggregate ledger is exactly the sum of the per-shard
    // invoices — a rebate is an inverse charge on the loser's replica,
    // not a hidden aggregate-side adjustment.
    let agg = s.usage();
    let mut sum = Usage::default();
    for i in 0..s.shard_count() {
        sum.accumulate(&s.shard_usage(i));
    }
    assert_eq!(agg.invocations, sum.invocations);
    assert_eq!(agg.docs_short, sum.docs_short);
    assert_eq!(agg.docs_long, sum.docs_long);
    assert!((agg.total_cost() - sum.total_cost()).abs() < 1e-9);

    // The exact cost decomposition of CLAUDE.md still holds on the
    // post-rebate ledger: server charges + c_a × comparisons.
    let k = s.constants();
    let u = &out.report.text;
    let expected_text = k.c_i * u.invocations as f64
        + k.c_p * u.postings_processed as f64
        + k.c_s * u.docs_short as f64
        + k.c_l * u.docs_long as f64
        + u.time_backoff;
    assert!((u.total_cost() - expected_text).abs() < 1e-6);
    assert!(
        (out.report.total_cost() - (expected_text + ctx.c_a * out.report.rtp_comparisons as f64))
            .abs()
            < 1e-6
    );

    // View 4: the metrics-snapshot bridge reports the rebated ledger's
    // numbers verbatim — a printed table can never disagree with the
    // invoice about what cancelled work cost.
    let snap = agg.metrics_snapshot();
    assert_eq!(snap.counter("usage.invocations"), agg.invocations);
    assert_eq!(snap.counter("usage.docs_short"), agg.docs_short);
    assert_eq!(snap.counter("usage.docs_long"), agg.docs_long);
    assert!((snap.value("usage.total_cost") - agg.total_cost()).abs() < 1e-12);
}

#[test]
fn migration_charges_land_in_a_dedicated_bucket_disjoint_from_queries() {
    use textjoin::text::doc::DocId;
    use textjoin::text::rebalance::{MigrationPlan, Move};
    use textjoin::text::server::Usage;
    use textjoin::text::shard::ShardedTextServer;
    use textjoin::text::TextService;

    let w = world();
    let schema = w.server.collection().schema();
    let p = prepare(&paper::q1(&w), &w.catalog, schema).expect("q1 prepares");
    let fj = p.foreign_join();

    let mut s = ShardedTextServer::new(w.server.collection(), 4, 0x5AD);
    let n = w.server.collection().doc_count() as u32;
    s.begin_migration(MigrationPlan::new(
        vec![Move { range: (DocId(0), DocId(n)), src: 1, dst: 3 }],
        32,
    ));
    s.set_migration_pacing(3);

    // A query runs while transfer batches interleave with its legs.
    let ctx = ExecContext::new(&s);
    let out = textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true)
        .expect("TS runs mid-migration");
    s.run_migration().expect("fault-free migration completes");

    // The migration bucket is non-trivial and carries the transfer shape:
    // a source leg per batch (c_l per doc) and a destination leg per
    // batch (c_p per posting), each one invocation.
    let mig = s.migration_usage();
    assert!(mig.invocations > 0, "transfers charge invocations");
    assert!(mig.docs_long > 0, "the source leg buys long forms");
    assert!(mig.postings_processed > 0, "the destination leg ingests postings");
    assert_eq!(mig.docs_short, 0, "no short forms move in a transfer");
    assert_eq!(mig.faults, 0, "fault-free run");
    let k = s.constants();
    let expected_mig = k.c_i * mig.invocations as f64
        + k.c_p * mig.postings_processed as f64
        + k.c_l * mig.docs_long as f64;
    assert!(
        (mig.total_cost() - expected_mig).abs() < 1e-9,
        "the migration bucket decomposes into c_i/c_p/c_l charges exactly"
    );

    // Disjointness: the aggregate ledger is exactly the per-shard query
    // invoices plus the migration bucket — transfers never leak into a
    // shard invoice, and queries never leak into the migration bucket.
    let agg = s.usage();
    let mut queries = Usage::default();
    for i in 0..s.shard_count() {
        queries.accumulate(&s.shard_usage(i));
    }
    assert_eq!(agg.invocations, queries.invocations + mig.invocations);
    assert_eq!(agg.docs_long, queries.docs_long + mig.docs_long);
    assert_eq!(
        agg.postings_processed,
        queries.postings_processed + mig.postings_processed
    );
    assert!((agg.total_cost() - (queries.total_cost() + mig.total_cost())).abs() < 1e-9);

    // The method's reported ledger (a `Usage::since` delta over the
    // aggregate) still decomposes exactly, with the paced transfer legs
    // it triggered priced by the same constants.
    let u = &out.report.text;
    let expected_text = k.c_i * u.invocations as f64
        + k.c_p * u.postings_processed as f64
        + k.c_s * u.docs_short as f64
        + k.c_l * u.docs_long as f64
        + u.time_backoff;
    assert!((u.total_cost() - expected_text).abs() < 1e-6);

    // After the drain, further queries grow only the query invoices: the
    // migration bucket is frozen.
    let frozen = s.migration_usage();
    let _ = textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true)
        .expect("TS runs after migration");
    let after = s.migration_usage();
    assert_eq!(after.invocations, frozen.invocations);
    assert!((after.total_cost() - frozen.total_cost()).abs() < 1e-12);
}

#[test]
fn serve_aggregate_decomposes_into_tenant_invoices_plus_migration() {
    use textjoin::core::serve::{Backend, ServeConfig, ServeSession, TenantSpec};
    use textjoin::obs::MonitorConfig;
    use textjoin::text::faults::FaultPlan;
    use textjoin::text::server::Usage;
    use textjoin::text::shard::ShardedTextServer;
    use textjoin::text::TextService;

    let w = world();
    let params = CostParams::mercury(w.server.doc_count() as f64);
    // A degraded hot shard so the session's monitor derives advice and
    // the auto-rebalance path actually bills the migration bucket.
    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    for r in 0..2 {
        s.replica_mut(1, r)
            .set_fault_plan(FaultPlan::transient(0x5EA7 ^ ((r as u64) << 32), 0.35, 2));
    }
    let mut cfg = ServeConfig::new(params);
    cfg.quantum = 1e9;
    cfg.monitor = Some(MonitorConfig::new(100.0).with_skew(400_000, 320_000));
    cfg.migration_budget = 1e9;
    let tenants = vec![
        TenantSpec::new("a", 1e9, 1),
        TenantSpec::new("b", 1e9, 1),
        TenantSpec::new("c", 1e9, 1),
    ];
    let q5 = paper::q5(&w);
    let q6 = paper::q6(&w);
    let stream: Vec<_> = (0..9)
        .map(|i| (i % 3, if i % 2 == 0 { q5.clone() } else { q6.clone() }))
        .collect();
    let report = ServeSession::new(Backend::Elastic(&mut s), &w.catalog, tenants, cfg).run(&stream);

    assert!(
        report.migration.invocations > 0,
        "the fixture must exercise the migration bucket"
    );
    // Field-for-field: aggregate = Σ tenant invoices + migration bucket.
    // Counts exact; the times (running-ledger deltas) to 1e-9.
    let mut sum = Usage::default();
    for t in &report.tenants {
        sum.accumulate(&t.invoice);
    }
    sum.accumulate(&report.migration);
    let a = &report.aggregate;
    assert_eq!(a.invocations, sum.invocations);
    assert_eq!(a.rejected, sum.rejected);
    assert_eq!(a.postings_processed, sum.postings_processed);
    assert_eq!(a.docs_short, sum.docs_short);
    assert_eq!(a.docs_long, sum.docs_long);
    assert_eq!(a.faults, sum.faults);
    assert_eq!(a.retries, sum.retries);
    assert!((a.time_invocation - sum.time_invocation).abs() < 1e-9);
    assert!((a.time_processing - sum.time_processing).abs() < 1e-9);
    assert!((a.time_transmission - sum.time_transmission).abs() < 1e-9);
    assert!((a.time_backoff - sum.time_backoff).abs() < 1e-9);
    assert!((a.total_cost() - sum.total_cost()).abs() < 1e-9);

    // And each tenant invoice still prices by the server's constants:
    // c_i/c_p/c_s/c_l plus backoff, nothing else.
    let k = s.constants();
    for t in &report.tenants {
        let u = &t.invoice;
        let expected = k.c_i * u.invocations as f64
            + k.c_p * u.postings_processed as f64
            + k.c_s * u.docs_short as f64
            + k.c_l * u.docs_long as f64
            + u.time_backoff;
        assert!(
            (u.total_cost() - expected).abs() < 1e-6,
            "tenant {} invoice must decompose into server constants",
            t.name
        );
    }
}
