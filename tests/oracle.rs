//! Integration: every join method agrees with a brute-force oracle.
//!
//! The oracle evaluates the foreign join by scanning every (tuple,
//! document) pair directly against the collection — no inverted index, no
//! search API — using the same normalized term-containment semantics. Any
//! divergence between a method and the oracle is a correctness bug in the
//! index, the evaluator, the method, or the string matcher.

use textjoin::core::methods::probe::ProbeSchedule;
use textjoin::core::methods::{ExecContext, ForeignJoin, Projection, TextSelection};
use textjoin::rel::strmatch::contains_term;
use textjoin::rel::table::Table;
use textjoin::text::doc::DocId;
use textjoin::text::server::TextServer;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

/// All (tuple index, docid) pairs the join should produce, by direct scan.
fn oracle_pairs(fj: &ForeignJoin<'_>, server: &TextServer) -> Vec<(usize, DocId)> {
    let coll = server.collection();
    let mut out = Vec::new();
    for (ti, tuple) in fj.rel.iter().enumerate() {
        'docs: for d in 0..coll.doc_count() {
            let id = DocId(d as u32);
            let doc = coll.document(id).expect("dense docids");
            for sel in &fj.selections {
                if !doc
                    .values(sel.field)
                    .iter()
                    .any(|v| contains_term(v, &sel.term))
                {
                    continue 'docs;
                }
            }
            for (col, field) in fj.join_cols.iter().zip(&fj.join_fields) {
                let Some(needle) = tuple.get(*col).as_str() else {
                    continue 'docs;
                };
                if needle.trim().is_empty()
                    || !doc.values(*field).iter().any(|v| contains_term(v, needle))
                {
                    continue 'docs;
                }
            }
            out.push((ti, id));
        }
    }
    out
}

/// Projects oracle pairs the way the method output is shaped, as sorted
/// strings.
fn oracle_shape(fj: &ForeignJoin<'_>, pairs: &[(usize, DocId)]) -> Vec<String> {
    let mut rows: Vec<String> = match fj.projection {
        Projection::RelOnly => {
            let mut tuples: Vec<usize> = pairs.iter().map(|&(t, _)| t).collect();
            tuples.dedup();
            tuples.sort_unstable();
            tuples.dedup();
            tuples
                .into_iter()
                .map(|t| fj.rel.rows()[t].to_string())
                .collect()
        }
        Projection::DocIds => {
            let mut ids: Vec<DocId> = pairs.iter().map(|&(_, d)| d).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.iter().map(|d| format!("[{d}]")).collect()
        }
        Projection::Full => pairs
            .iter()
            .map(|&(t, d)| format!("{}+{d}", fj.rel.rows()[t]))
            .collect(),
    };
    rows.sort();
    rows
}

/// Shapes a method output table the same way.
fn method_shape(fj: &ForeignJoin<'_>, table: &Table) -> Vec<String> {
    let mut rows: Vec<String> = match fj.projection {
        Projection::RelOnly => table.iter().map(|r| r.to_string()).collect(),
        Projection::DocIds => table
            .iter()
            .map(|r| {
                format!(
                    "[{}]",
                    r.get(textjoin::rel::schema::ColId(0))
                        .as_str()
                        .expect("docid column")
                )
            })
            .collect(),
        Projection::Full => {
            let rel_arity = fj.rel.schema().len();
            let docid_col = textjoin::rel::schema::ColId(rel_arity);
            table
                .iter()
                .map(|r| {
                    let rel_part = r.project(
                        &(0..rel_arity)
                            .map(textjoin::rel::schema::ColId)
                            .collect::<Vec<_>>(),
                    );
                    format!(
                        "{rel_part}+{}",
                        r.get(docid_col).as_str().expect("docid column")
                    )
                })
                .collect()
        }
    };
    rows.sort();
    rows
}

fn check_all_methods(fj: &ForeignJoin<'_>, server: &TextServer) {
    let expected = oracle_shape(fj, &oracle_pairs(fj, server));
    let ctx = ExecContext::new(server);

    let mut results: Vec<(String, Vec<String>)> = Vec::new();
    results.push((
        "TS".into(),
        method_shape(
            fj,
            &textjoin::core::methods::ts::tuple_substitution(&ctx, fj, true)
                .expect("TS runs")
                .table,
        ),
    ));
    results.push((
        "TS-naive".into(),
        method_shape(
            fj,
            &textjoin::core::methods::ts::tuple_substitution(&ctx, fj, false)
                .expect("TS naive runs")
                .table,
        ),
    ));
    if !fj.selections.is_empty() {
        results.push((
            "RTP".into(),
            method_shape(
                fj,
                &textjoin::core::methods::rtp::relational_text_processing(&ctx, fj)
                    .expect("RTP runs")
                    .table,
            ),
        ));
    }
    results.push((
        "SJ".into(),
        method_shape(
            fj,
            &textjoin::core::methods::sj::semi_join(&ctx, fj).expect("SJ runs").table,
        ),
    ));
    for probe in [vec![0], (0..fj.k()).collect::<Vec<_>>()] {
        for schedule in [ProbeSchedule::ProbeFirst, ProbeSchedule::Lazy] {
            results.push((
                format!("P{probe:?}+TS/{schedule:?}"),
                method_shape(
                    fj,
                    &textjoin::core::methods::probe::probe_tuple_substitution(
                        &ctx, fj, &probe, schedule,
                    )
                    .expect("P+TS runs")
                    .table,
                ),
            ));
        }
        results.push((
            format!("P{probe:?}+RTP"),
            method_shape(
                fj,
                &textjoin::core::methods::probe::probe_rtp(&ctx, fj, &probe)
                    .expect("P+RTP runs")
                    .table,
            ),
        ));
    }
    for (label, got) in results {
        assert_eq!(
            got, expected,
            "{label} disagrees with the brute-force oracle"
        );
    }
}

fn worlds() -> Vec<World> {
    [7u64, 11, 23]
        .into_iter()
        .map(|seed| {
            World::generate(WorldSpec {
                seed,
                background_docs: 150,
                students: 40,
                projects: 12,
                ..WorldSpec::default()
            })
        })
        .collect()
}

#[test]
fn q3_all_methods_match_oracle_full() {
    for w in worlds() {
        let p = textjoin::core::query::prepare(
            &paper::q3(&w),
            &w.catalog,
            w.server.collection().schema(),
        )
        .expect("q3 prepares");
        check_all_methods(&p.foreign_join(), &w.server);
    }
}

#[test]
fn q4_all_methods_match_oracle_all_projections() {
    for w in worlds() {
        for projection in [Projection::RelOnly, Projection::DocIds, Projection::Full] {
            let mut q = paper::q4(&w);
            q.projection = projection;
            let p =
                textjoin::core::query::prepare(&q, &w.catalog, w.server.collection().schema())
                    .expect("q4 prepares");
            check_all_methods(&p.foreign_join(), &w.server);
        }
    }
}

#[test]
fn q1_with_selection_matches_oracle() {
    for w in worlds() {
        let p = textjoin::core::query::prepare(
            &paper::q1(&w),
            &w.catalog,
            w.server.collection().schema(),
        )
        .expect("q1 prepares");
        let fj = p.foreign_join();
        // q1 has one join predicate; only single-predicate probes apply.
        let expected = oracle_shape(&fj, &oracle_pairs(&fj, &w.server));
        let ctx = ExecContext::new(&w.server);
        let ts = method_shape(
            &fj,
            &textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true)
                .expect("TS runs")
                .table,
        );
        let rtp = method_shape(
            &fj,
            &textjoin::core::methods::rtp::relational_text_processing(&ctx, &fj)
                .expect("RTP runs")
                .table,
        );
        assert_eq!(ts, expected);
        assert_eq!(rtp, expected);
    }
}

#[test]
fn selections_only_probe_consistency() {
    // A selection-only query (no join predicates is invalid for methods,
    // but a probe on one predicate with a selection must honor both).
    let w = &worlds()[0];
    let schema = w.server.collection().schema();
    let q = textjoin::core::query::SingleJoinQuery {
        relation: "student".into(),
        local_pred: textjoin::rel::expr::Pred::True,
        selections: vec![("1993".into(), "year".into())],
        join: vec![("name".into(), "author".into())],
        projection: Projection::RelOnly,
    };
    let p = textjoin::core::query::prepare(&q, &w.catalog, schema).expect("prepares");
    check_all_methods(&p.foreign_join(), &w.server);
    let _ = TextSelection {
        term: "1993".into(),
        field: schema.field_by_name("year").expect("year field"),
    };
}
