//! Integration: every join method agrees with a brute-force oracle.
//!
//! The oracle evaluates the foreign join by scanning every (tuple,
//! document) pair directly against the collection — no inverted index, no
//! search API — using the same normalized term-containment semantics. Any
//! divergence between a method and the oracle is a correctness bug in the
//! index, the evaluator, the method, or the string matcher.

use textjoin::core::methods::probe::ProbeSchedule;
use textjoin::core::methods::{ExecContext, ForeignJoin, Projection, TextSelection};
use textjoin::rel::strmatch::contains_term;
use textjoin::rel::table::Table;
use textjoin::text::doc::DocId;
use textjoin::text::server::TextServer;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

/// All (tuple index, docid) pairs the join should produce, by direct scan.
fn oracle_pairs(fj: &ForeignJoin<'_>, server: &TextServer) -> Vec<(usize, DocId)> {
    let coll = server.collection();
    let mut out = Vec::new();
    for (ti, tuple) in fj.rel.iter().enumerate() {
        'docs: for d in 0..coll.doc_count() {
            let id = DocId(d as u32);
            let doc = coll.document(id).expect("dense docids");
            for sel in &fj.selections {
                if !doc
                    .values(sel.field)
                    .iter()
                    .any(|v| contains_term(v, &sel.term))
                {
                    continue 'docs;
                }
            }
            for (col, field) in fj.join_cols.iter().zip(&fj.join_fields) {
                let Some(needle) = tuple.get(*col).as_str() else {
                    continue 'docs;
                };
                if needle.trim().is_empty()
                    || !doc.values(*field).iter().any(|v| contains_term(v, needle))
                {
                    continue 'docs;
                }
            }
            out.push((ti, id));
        }
    }
    out
}

/// Projects oracle pairs the way the method output is shaped, as sorted
/// strings.
fn oracle_shape(fj: &ForeignJoin<'_>, pairs: &[(usize, DocId)]) -> Vec<String> {
    let mut rows: Vec<String> = match fj.projection {
        Projection::RelOnly => {
            let mut tuples: Vec<usize> = pairs.iter().map(|&(t, _)| t).collect();
            tuples.dedup();
            tuples.sort_unstable();
            tuples.dedup();
            tuples
                .into_iter()
                .map(|t| fj.rel.rows()[t].to_string())
                .collect()
        }
        Projection::DocIds => {
            let mut ids: Vec<DocId> = pairs.iter().map(|&(_, d)| d).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.iter().map(|d| format!("[{d}]")).collect()
        }
        Projection::Full => pairs
            .iter()
            .map(|&(t, d)| format!("{}+{d}", fj.rel.rows()[t]))
            .collect(),
    };
    rows.sort();
    rows
}

/// Shapes a method output table the same way.
fn method_shape(fj: &ForeignJoin<'_>, table: &Table) -> Vec<String> {
    let mut rows: Vec<String> = match fj.projection {
        Projection::RelOnly => table.iter().map(|r| r.to_string()).collect(),
        Projection::DocIds => table
            .iter()
            .map(|r| {
                format!(
                    "[{}]",
                    r.get(textjoin::rel::schema::ColId(0))
                        .as_str()
                        .expect("docid column")
                )
            })
            .collect(),
        Projection::Full => {
            let rel_arity = fj.rel.schema().len();
            let docid_col = textjoin::rel::schema::ColId(rel_arity);
            table
                .iter()
                .map(|r| {
                    let rel_part = r.project(
                        &(0..rel_arity)
                            .map(textjoin::rel::schema::ColId)
                            .collect::<Vec<_>>(),
                    );
                    format!(
                        "{rel_part}+{}",
                        r.get(docid_col).as_str().expect("docid column")
                    )
                })
                .collect()
        }
    };
    rows.sort();
    rows
}

fn check_all_methods(fj: &ForeignJoin<'_>, server: &TextServer) {
    let expected = oracle_shape(fj, &oracle_pairs(fj, server));
    let ctx = ExecContext::new(server);

    let mut results: Vec<(String, Vec<String>)> = Vec::new();
    results.push((
        "TS".into(),
        method_shape(
            fj,
            &textjoin::core::methods::ts::tuple_substitution(&ctx, fj, true)
                .expect("TS runs")
                .table,
        ),
    ));
    results.push((
        "TS-naive".into(),
        method_shape(
            fj,
            &textjoin::core::methods::ts::tuple_substitution(&ctx, fj, false)
                .expect("TS naive runs")
                .table,
        ),
    ));
    if !fj.selections.is_empty() {
        results.push((
            "RTP".into(),
            method_shape(
                fj,
                &textjoin::core::methods::rtp::relational_text_processing(&ctx, fj)
                    .expect("RTP runs")
                    .table,
            ),
        ));
    }
    results.push((
        "SJ".into(),
        method_shape(
            fj,
            &textjoin::core::methods::sj::semi_join(&ctx, fj).expect("SJ runs").table,
        ),
    ));
    for probe in [vec![0], (0..fj.k()).collect::<Vec<_>>()] {
        for schedule in [ProbeSchedule::ProbeFirst, ProbeSchedule::Lazy] {
            results.push((
                format!("P{probe:?}+TS/{schedule:?}"),
                method_shape(
                    fj,
                    &textjoin::core::methods::probe::probe_tuple_substitution(
                        &ctx, fj, &probe, schedule,
                    )
                    .expect("P+TS runs")
                    .table,
                ),
            ));
        }
        results.push((
            format!("P{probe:?}+RTP"),
            method_shape(
                fj,
                &textjoin::core::methods::probe::probe_rtp(&ctx, fj, &probe)
                    .expect("P+RTP runs")
                    .table,
            ),
        ));
    }
    for (label, got) in results {
        assert_eq!(
            got, expected,
            "{label} disagrees with the brute-force oracle"
        );
    }
}

fn worlds() -> Vec<World> {
    [7u64, 11, 23]
        .into_iter()
        .map(|seed| {
            World::generate(WorldSpec {
                seed,
                background_docs: 150,
                students: 40,
                projects: 12,
                ..WorldSpec::default()
            })
        })
        .collect()
}

#[test]
fn q3_all_methods_match_oracle_full() {
    for w in worlds() {
        let p = textjoin::core::query::prepare(
            &paper::q3(&w),
            &w.catalog,
            w.server.collection().schema(),
        )
        .expect("q3 prepares");
        check_all_methods(&p.foreign_join(), &w.server);
    }
}

#[test]
fn q4_all_methods_match_oracle_all_projections() {
    for w in worlds() {
        for projection in [Projection::RelOnly, Projection::DocIds, Projection::Full] {
            let mut q = paper::q4(&w);
            q.projection = projection;
            let p =
                textjoin::core::query::prepare(&q, &w.catalog, w.server.collection().schema())
                    .expect("q4 prepares");
            check_all_methods(&p.foreign_join(), &w.server);
        }
    }
}

#[test]
fn q1_with_selection_matches_oracle() {
    for w in worlds() {
        let p = textjoin::core::query::prepare(
            &paper::q1(&w),
            &w.catalog,
            w.server.collection().schema(),
        )
        .expect("q1 prepares");
        let fj = p.foreign_join();
        // q1 has one join predicate; only single-predicate probes apply.
        let expected = oracle_shape(&fj, &oracle_pairs(&fj, &w.server));
        let ctx = ExecContext::new(&w.server);
        let ts = method_shape(
            &fj,
            &textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true)
                .expect("TS runs")
                .table,
        );
        let rtp = method_shape(
            &fj,
            &textjoin::core::methods::rtp::relational_text_processing(&ctx, &fj)
                .expect("RTP runs")
                .table,
        );
        assert_eq!(ts, expected);
        assert_eq!(rtp, expected);
    }
}

/// The acceptance grid for the deterministic transport: every method, on a
/// 4-shard × 2-replica server whose every primary runs slow, under an
/// adaptive budget (hedged reads racing the stragglers), a virtual-time
/// scheduler, and a deliberately tight per-query deadline — and still every
/// method returns exactly the brute-force multiset, no deadline miss
/// escapes as an error, and the concurrent makespan lands strictly below
/// the serial transport time.
#[test]
fn all_methods_match_oracle_under_slow_replicas_hedging_and_deadlines() {
    use textjoin::core::retry::{RetryBudget, RetryPolicy};
    use textjoin::core::sched::{SchedConfig, Scheduler};
    use textjoin::text::faults::FaultPlan;
    use textjoin::text::shard::ShardedTextServer;

    let mut hedges = 0u64;
    let mut misses = 0u64;
    for w in worlds() {
        // q1 carries both a text selection and a join predicate, so all
        // five methods (including RTP, which requires a selection) apply.
        let p = textjoin::core::query::prepare(
            &paper::q1(&w),
            &w.catalog,
            w.server.collection().schema(),
        )
        .expect("q1 prepares");
        let fj = p.foreign_join();
        let expected = oracle_shape(&fj, &oracle_pairs(&fj, &w.server));

        type MethodRun<'a> = Box<dyn Fn(&ExecContext<'_>) -> Table + 'a>;
        let runs: Vec<(&str, MethodRun<'_>)> = vec![
            ("TS", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::ts::tuple_substitution(ctx, &fj, true)
                    .expect("TS survives slow replicas")
                    .table
            })),
            ("RTP", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::rtp::relational_text_processing(ctx, &fj)
                    .expect("RTP survives slow replicas")
                    .table
            })),
            ("SJ", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::sj::semi_join(ctx, &fj)
                    .expect("SJ survives slow replicas")
                    .table
            })),
            ("P+TS", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::probe::probe_tuple_substitution(
                    ctx,
                    &fj,
                    &[0],
                    ProbeSchedule::ProbeFirst,
                )
                .expect("P+TS survives slow replicas")
                .table
            })),
            ("P+RTP", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::probe::probe_rtp(ctx, &fj, &[0])
                    .expect("P+RTP survives slow replicas")
                    .table
            })),
        ];
        for (label, run) in &runs {
            let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
            for i in 0..s.shard_count() {
                let pri = s.primary_of(i);
                s.replica_mut(i, pri)
                    .set_fault_plan(FaultPlan::slow(0xBEEF ^ ((i as u64) << 16), 0.2));
            }
            let budget = RetryBudget::new(RetryPolicy::standard());
            let sched = Scheduler::new(SchedConfig::new(0x7E97).with_deadline(40.0));
            let ctx = ExecContext::with_budget(&s, &budget).with_transport(&sched);
            let table = run(&ctx);
            assert_eq!(
                method_shape(&fj, &table),
                expected,
                "{label} under slow replicas + hedging + deadline disagrees with the oracle"
            );
            assert!(
                sched.makespan() < sched.serial_total(),
                "{label}: concurrent makespan must beat the serial transport"
            );
            hedges += sched.hedges();
            misses += sched.deadline_misses();
        }
    }
    assert!(hedges > 0, "the slow primaries never provoked a hedge");
    assert!(misses > 0, "the 40s deadline never bit");
}

/// The rebalance acceptance grid: every method runs while a paced online
/// migration drains shard 1 into shard 3 on a 4-shard × 2-replica server
/// whose source primary dies permanently after the first committed batch.
/// Every method must return exactly the brute-force multiset even though
/// rows physically move between shards mid-query (transfer legs drain via
/// the surviving replica, gathers re-scatter on epoch bumps), and the
/// migration must then drain to completion with every move committed.
#[test]
fn all_methods_match_oracle_mid_migration_with_dead_source() {
    use textjoin::core::retry::{RetryBudget, RetryPolicy};
    use textjoin::text::doc::DocId;
    use textjoin::text::faults::FaultPlan;
    use textjoin::text::rebalance::{MigrationPlan, Move, MoveStatus};
    use textjoin::text::shard::ShardedTextServer;

    for w in worlds() {
        let p = textjoin::core::query::prepare(
            &paper::q1(&w),
            &w.catalog,
            w.server.collection().schema(),
        )
        .expect("q1 prepares");
        let fj = p.foreign_join();
        let expected = oracle_shape(&fj, &oracle_pairs(&fj, &w.server));

        type MethodRun<'a> = Box<dyn Fn(&ExecContext<'_>) -> Table + 'a>;
        let runs: Vec<(&str, MethodRun<'_>)> = vec![
            ("TS", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::ts::tuple_substitution(ctx, &fj, true)
                    .expect("TS survives migration")
                    .table
            })),
            ("RTP", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::rtp::relational_text_processing(ctx, &fj)
                    .expect("RTP survives migration")
                    .table
            })),
            ("SJ", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::sj::semi_join(ctx, &fj)
                    .expect("SJ survives migration")
                    .table
            })),
            ("P+TS", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::probe::probe_tuple_substitution(
                    ctx,
                    &fj,
                    &[0],
                    ProbeSchedule::ProbeFirst,
                )
                .expect("P+TS survives migration")
                .table
            })),
            ("P+RTP", Box::new(|ctx: &ExecContext<'_>| {
                textjoin::core::methods::probe::probe_rtp(ctx, &fj, &[0])
                    .expect("P+RTP survives migration")
                    .table
            })),
        ];
        for (label, run) in &runs {
            let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
            let n = w.server.collection().doc_count() as u32;
            s.begin_migration(MigrationPlan::new(
                vec![Move { range: (DocId(0), DocId(n)), src: 1, dst: 3 }],
                16,
            ));
            // Batch 1 commits cleanly, then the source primary dies: every
            // further source transfer leg must fail over to the replica.
            s.migrate_batch().expect("fault-free first batch");
            let pri = s.primary_of(1);
            s.replica_mut(1, pri).set_fault_plan(FaultPlan::dead(0xDEAD));
            s.set_migration_pacing(2);
            let budget = RetryBudget::new(RetryPolicy::standard());
            let ctx = ExecContext::with_budget(&s, &budget);
            let table = run(&ctx);
            assert_eq!(
                method_shape(&fj, &table),
                expected,
                "{label} mid-migration disagrees with the brute-force oracle"
            );
            let mut steps = 0u32;
            while !s.journal().expect("journal exists").finished() {
                let _ = s.migrate_batch();
                steps += 1;
                assert!(steps < 10_000, "{label}: migration failed to drain");
            }
            assert!(
                s.journal()
                    .expect("journal exists")
                    .entries
                    .iter()
                    .all(|e| e.status == MoveStatus::Done),
                "{label}: a move aborted under a recoverable dead primary"
            );
        }
    }
}

#[test]
fn selections_only_probe_consistency() {
    // A selection-only query (no join predicates is invalid for methods,
    // but a probe on one predicate with a selection must honor both).
    let w = &worlds()[0];
    let schema = w.server.collection().schema();
    let q = textjoin::core::query::SingleJoinQuery {
        relation: "student".into(),
        local_pred: textjoin::rel::expr::Pred::True,
        selections: vec![("1993".into(), "year".into())],
        join: vec![("name".into(), "author".into())],
        projection: Projection::RelOnly,
    };
    let p = textjoin::core::query::prepare(&q, &w.catalog, schema).expect("prepares");
    check_all_methods(&p.foreign_join(), &w.server);
    let _ = TextSelection {
        term: "1993".into(),
        field: schema.field_by_name("year").expect("year field"),
    };
}
