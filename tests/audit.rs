//! Trace↔ledger audit: the flight recorder must be a *faithful, passive*
//! observer of the cost model.
//!
//! Faithful: summing the charge fields of every recorded event reproduces
//! the server's `Usage` ledger exactly — integer counters field for field,
//! simulated seconds to 1e-9 — for every join method, on both the single
//! server and the sharded scatter/gather server, with and without injected
//! faults. Nothing is charged off-trace and nothing is traced un-charged.
//!
//! Passive: attaching a recorder (even a discard-everything sink) must not
//! add a single entry to any `Usage` field — observation never perturbs
//! the costs the experiments report.

use std::rc::Rc;

use textjoin::core::methods::probe::ProbeSchedule;
use textjoin::core::methods::{ExecContext, ForeignJoin, MethodError, MethodOutcome};
use textjoin::core::retry::{RetryBudget, RetryPolicy};
use textjoin::obs::{Charge, Event, NoopSink, Recorder, RingSink};
use textjoin::text::faults::FaultPlan;
use textjoin::text::server::{TextServer, Usage};
use textjoin::text::shard::ShardedTextServer;
use textjoin::text::TextService;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn compact_world(seed: u64) -> World {
    World::generate(WorldSpec {
        seed,
        background_docs: 120,
        students: 30,
        projects: 10,
        ..WorldSpec::default()
    })
}

/// Field-wise sum of every chargeable event in a trace.
fn charge_sum(events: &[Event]) -> Charge {
    let mut sum = Charge::default();
    for ev in events {
        if let Some(c) = ev.kind.charge() {
            sum.accumulate(c);
        }
    }
    sum
}

/// The audit proper: integer counters must match exactly; simulated-second
/// fields to 1e-9 (a sharded aggregate sums shard ledgers in shard order
/// while the trace accumulated them in temporal order, so the float sums
/// may differ by rounding, never by a charge).
fn assert_reconciles(label: &str, events: &[Event], ledger: &Usage) {
    let sum = charge_sum(events);
    assert_eq!(sum.invocations, ledger.invocations as i64, "{label}: invocations");
    assert_eq!(sum.rejected, ledger.rejected as i64, "{label}: rejected");
    assert_eq!(
        sum.postings, ledger.postings_processed as i64,
        "{label}: postings"
    );
    assert_eq!(sum.docs_short, ledger.docs_short as i64, "{label}: docs_short");
    assert_eq!(sum.docs_long, ledger.docs_long as i64, "{label}: docs_long");
    assert_eq!(sum.faults, ledger.faults as i64, "{label}: faults");
    assert_eq!(sum.retries, ledger.retries as i64, "{label}: retries");
    for (name, got, want) in [
        ("time_invocation", sum.time_invocation, ledger.time_invocation),
        ("time_processing", sum.time_processing, ledger.time_processing),
        (
            "time_transmission",
            sum.time_transmission,
            ledger.time_transmission,
        ),
        ("time_backoff", sum.time_backoff, ledger.time_backoff),
    ] {
        assert!(
            (got - want).abs() < 1e-9,
            "{label}: {name} drifted: trace {got} vs ledger {want}"
        );
    }
}

/// Runs one method through an explicit context, tolerating the typed
/// failures bounded sharded chaos can legitimately produce — the audit
/// must reconcile the trace against the ledger on *both* paths.
fn run_one(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    method: &str,
) -> Result<MethodOutcome, MethodError> {
    match method {
        "TS" => textjoin::core::methods::ts::tuple_substitution(ctx, fj, true),
        "RTP" => textjoin::core::methods::rtp::relational_text_processing(ctx, fj),
        "SJ" => textjoin::core::methods::sj::semi_join(ctx, fj),
        "P+TS" => textjoin::core::methods::probe::probe_tuple_substitution(
            ctx,
            fj,
            &[0],
            ProbeSchedule::ProbeFirst,
        ),
        "P+RTP" => textjoin::core::methods::probe::probe_rtp(ctx, fj, &[0]),
        other => panic!("unknown method {other}"),
    }
}

fn methods_for(fj: &ForeignJoin<'_>) -> Vec<&'static str> {
    let mut m = vec!["TS", "SJ", "P+TS", "P+RTP"];
    if !fj.selections.is_empty() {
        m.insert(1, "RTP");
    }
    m
}

#[test]
fn trace_charges_reconcile_with_single_server_ledger() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let mut audited = 0u32;
    let mut faulted_traces = 0u32;
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for rate in [0.0, 0.3] {
            for method in methods_for(&fj) {
                let mut s = TextServer::new(w.server.collection().clone());
                // ≤2 consecutive faults: below the 4-attempt policy, so
                // every run completes and the trace covers the retries.
                s.set_fault_plan(FaultPlan::transient(11, rate, 2));
                let sink = Rc::new(RingSink::unbounded());
                s.set_recorder(Some(Recorder::new(sink.clone())));
                let ctx = ExecContext::new(&s);
                run_one(&ctx, &fj, method).expect("bounded faults never exhaust retries");
                let label = format!("{qname}/{method}@{rate}");
                let events = sink.events();
                assert_reconciles(&label, &events, &s.usage());
                audited += 1;
                if s.usage().faults > 0 {
                    faulted_traces += 1;
                }
            }
        }
    }
    assert!(audited >= 16, "audit matrix too small ({audited})");
    assert!(
        faulted_traces > 0,
        "the faulted half of the matrix must actually fault"
    );
}

#[test]
fn trace_charges_reconcile_with_sharded_aggregate_ledger() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let mut audited = 0u32;
    let mut faulted_traces = 0u32;
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for rate in [0.0, 0.3] {
            for method in methods_for(&fj) {
                let mut s = ShardedTextServer::new(w.server.collection(), 4, 0x5AD);
                for i in 0..4 {
                    s.shard_mut(i).set_fault_plan(FaultPlan::transient(
                        11 ^ ((i as u64) << 24),
                        rate,
                        2,
                    ));
                }
                let sink = Rc::new(RingSink::unbounded());
                s.set_recorder(Some(Recorder::new(sink.clone())));
                let budget = RetryBudget::new(RetryPolicy::standard());
                let ctx = ExecContext::with_budget(&s, &budget);
                // Bounded sharded chaos may still surface a typed partial
                // failure; the trace must reconcile either way.
                let _ = run_one(&ctx, &fj, method);
                let label = format!("sharded {qname}/{method}@{rate}");
                let events = sink.events();
                assert_reconciles(&label, &events, &s.usage());
                audited += 1;
                if s.usage().faults > 0 {
                    faulted_traces += 1;
                }
            }
        }
    }
    assert!(audited >= 16, "audit matrix too small ({audited})");
    assert!(
        faulted_traces > 0,
        "the faulted half of the matrix must actually fault"
    );
}

#[test]
fn trace_charges_reconcile_with_replicated_failover_ledger() {
    use textjoin::obs::EventKind;

    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let mut audited = 0u32;
    let mut failover_traces = 0u32;
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for rate in [0.0, 0.3] {
            for method in methods_for(&fj) {
                // 4 shards × 2 replicas, shard 2's primary permanently
                // dead, independent bounded transient plans everywhere
                // else: every trace contains failover (and possibly
                // breaker) events, and all of them are charge-free — the
                // audit must still reconcile exactly.
                let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
                let dead = s.primary_of(2);
                for i in 0..4 {
                    for r in 0..2 {
                        let plan = if (i, r) == (2, dead) {
                            FaultPlan::dead(11)
                        } else {
                            FaultPlan::transient(
                                11 ^ ((i as u64) << 24) ^ ((r as u64) << 32),
                                rate,
                                2,
                            )
                        };
                        s.replica_mut(i, r).set_fault_plan(plan);
                    }
                }
                let sink = Rc::new(RingSink::unbounded());
                s.set_recorder(Some(Recorder::new(sink.clone())));
                let budget = RetryBudget::new(RetryPolicy::standard());
                let ctx = ExecContext::with_budget(&s, &budget);
                // Bounded faults on the survivors can still (rarely) take
                // both replicas of a shard down at once; the trace must
                // reconcile either way.
                let _ = run_one(&ctx, &fj, method);
                let label = format!("replicated {qname}/{method}@{rate}");
                let events = sink.events();
                assert_reconciles(&label, &events, &s.usage());
                audited += 1;
                if events
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::Failover { .. }))
                {
                    failover_traces += 1;
                }
            }
        }
    }
    assert!(audited >= 16, "audit matrix too small ({audited})");
    assert_eq!(
        failover_traces, audited,
        "every run scatters to the dead primary, so every trace fails over"
    );
}

/// Attaching a recorder with the discard-everything sink must leave every
/// `Usage` field byte-identical to an unrecorded run — observation is free
/// by contract.
#[test]
fn noop_recorder_never_perturbs_the_ledger() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for rate in [0.0, 0.3] {
            for method in methods_for(&fj) {
                let run = |record: bool| -> Usage {
                    let mut s = TextServer::new(w.server.collection().clone());
                    s.set_fault_plan(FaultPlan::transient(11, rate, 2));
                    if record {
                        s.set_recorder(Some(Recorder::new(Rc::new(NoopSink))));
                    }
                    let ctx = ExecContext::new(&s);
                    run_one(&ctx, &fj, method).expect("bounded faults complete");
                    s.usage()
                };
                let bare = run(false);
                let recorded = run(true);
                assert_eq!(
                    bare, recorded,
                    "{qname}/{method}@{rate}: a no-op recorder changed the ledger"
                );
            }
        }
    }
}
