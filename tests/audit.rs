//! Trace↔ledger audit: the flight recorder must be a *faithful, passive*
//! observer of the cost model.
//!
//! Faithful: summing the charge fields of every recorded event reproduces
//! the server's `Usage` ledger exactly — integer counters field for field,
//! simulated seconds to 1e-9 — for every join method, on both the single
//! server and the sharded scatter/gather server, with and without injected
//! faults. Nothing is charged off-trace and nothing is traced un-charged.
//!
//! Passive: attaching a recorder (even a discard-everything sink) must not
//! add a single entry to any `Usage` field — observation never perturbs
//! the costs the experiments report.

use std::rc::Rc;

use textjoin::core::methods::probe::ProbeSchedule;
use textjoin::core::methods::{ExecContext, ForeignJoin, MethodError, MethodOutcome};
use textjoin::core::retry::{RetryBudget, RetryPolicy};
use textjoin::obs::{Charge, Event, NoopSink, Recorder, RingSink};
use textjoin::text::faults::FaultPlan;
use textjoin::text::server::{TextServer, Usage};
use textjoin::text::shard::ShardedTextServer;
use textjoin::text::TextService;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn compact_world(seed: u64) -> World {
    World::generate(WorldSpec {
        seed,
        background_docs: 120,
        students: 30,
        projects: 10,
        ..WorldSpec::default()
    })
}

/// Field-wise sum of every chargeable event in a trace.
fn charge_sum(events: &[Event]) -> Charge {
    let mut sum = Charge::default();
    for ev in events {
        if let Some(c) = ev.kind.charge() {
            sum.accumulate(c);
        }
    }
    sum
}

/// The audit proper: integer counters must match exactly; simulated-second
/// fields to 1e-9 (a sharded aggregate sums shard ledgers in shard order
/// while the trace accumulated them in temporal order, so the float sums
/// may differ by rounding, never by a charge).
fn assert_reconciles(label: &str, sum: Charge, ledger: &Usage) {
    assert_eq!(sum.invocations, ledger.invocations as i64, "{label}: invocations");
    assert_eq!(sum.rejected, ledger.rejected as i64, "{label}: rejected");
    assert_eq!(
        sum.postings, ledger.postings_processed as i64,
        "{label}: postings"
    );
    assert_eq!(sum.docs_short, ledger.docs_short as i64, "{label}: docs_short");
    assert_eq!(sum.docs_long, ledger.docs_long as i64, "{label}: docs_long");
    assert_eq!(sum.faults, ledger.faults as i64, "{label}: faults");
    assert_eq!(sum.retries, ledger.retries as i64, "{label}: retries");
    for (name, got, want) in [
        ("time_invocation", sum.time_invocation, ledger.time_invocation),
        ("time_processing", sum.time_processing, ledger.time_processing),
        (
            "time_transmission",
            sum.time_transmission,
            ledger.time_transmission,
        ),
        ("time_backoff", sum.time_backoff, ledger.time_backoff),
    ] {
        assert!(
            (got - want).abs() < 1e-9,
            "{label}: {name} drifted: trace {got} vs ledger {want}"
        );
    }
}

/// Runs one method through an explicit context, tolerating the typed
/// failures bounded sharded chaos can legitimately produce — the audit
/// must reconcile the trace against the ledger on *both* paths.
fn run_one(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    method: &str,
) -> Result<MethodOutcome, MethodError> {
    match method {
        "TS" => textjoin::core::methods::ts::tuple_substitution(ctx, fj, true),
        "RTP" => textjoin::core::methods::rtp::relational_text_processing(ctx, fj),
        "SJ" => textjoin::core::methods::sj::semi_join(ctx, fj),
        "P+TS" => textjoin::core::methods::probe::probe_tuple_substitution(
            ctx,
            fj,
            &[0],
            ProbeSchedule::ProbeFirst,
        ),
        "P+RTP" => textjoin::core::methods::probe::probe_rtp(ctx, fj, &[0]),
        other => panic!("unknown method {other}"),
    }
}

fn methods_for(fj: &ForeignJoin<'_>) -> Vec<&'static str> {
    let mut m = vec!["TS", "SJ", "P+TS", "P+RTP"];
    if !fj.selections.is_empty() {
        m.insert(1, "RTP");
    }
    m
}

#[test]
fn trace_charges_reconcile_with_single_server_ledger() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let mut audited = 0u32;
    let mut faulted_traces = 0u32;
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for rate in [0.0, 0.3] {
            for method in methods_for(&fj) {
                let mut s = TextServer::new(w.server.collection().clone());
                // ≤2 consecutive faults: below the 4-attempt policy, so
                // every run completes and the trace covers the retries.
                s.set_fault_plan(FaultPlan::transient(11, rate, 2));
                let sink = Rc::new(RingSink::unbounded());
                s.set_recorder(Some(Recorder::new(sink.clone())));
                let ctx = ExecContext::new(&s);
                run_one(&ctx, &fj, method).expect("bounded faults never exhaust retries");
                let label = format!("{qname}/{method}@{rate}");
                let events = sink.events();
                assert_reconciles(&label, charge_sum(&events), &s.usage());
                audited += 1;
                if s.usage().faults > 0 {
                    faulted_traces += 1;
                }
            }
        }
    }
    assert!(audited >= 16, "audit matrix too small ({audited})");
    assert!(
        faulted_traces > 0,
        "the faulted half of the matrix must actually fault"
    );
}

#[test]
fn trace_charges_reconcile_with_sharded_aggregate_ledger() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let mut audited = 0u32;
    let mut faulted_traces = 0u32;
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for rate in [0.0, 0.3] {
            for method in methods_for(&fj) {
                let mut s = ShardedTextServer::new(w.server.collection(), 4, 0x5AD);
                for i in 0..4 {
                    s.shard_mut(i).set_fault_plan(FaultPlan::transient(
                        11 ^ ((i as u64) << 24),
                        rate,
                        2,
                    ));
                }
                let sink = Rc::new(RingSink::unbounded());
                s.set_recorder(Some(Recorder::new(sink.clone())));
                let budget = RetryBudget::new(RetryPolicy::standard());
                let ctx = ExecContext::with_budget(&s, &budget);
                // Bounded sharded chaos may still surface a typed partial
                // failure; the trace must reconcile either way.
                let _ = run_one(&ctx, &fj, method);
                let label = format!("sharded {qname}/{method}@{rate}");
                let events = sink.events();
                assert_reconciles(&label, charge_sum(&events), &s.usage());
                audited += 1;
                if s.usage().faults > 0 {
                    faulted_traces += 1;
                }
            }
        }
    }
    assert!(audited >= 16, "audit matrix too small ({audited})");
    assert!(
        faulted_traces > 0,
        "the faulted half of the matrix must actually fault"
    );
}

#[test]
fn trace_charges_reconcile_with_replicated_failover_ledger() {
    use textjoin::obs::EventKind;

    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let mut audited = 0u32;
    let mut failover_traces = 0u32;
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for rate in [0.0, 0.3] {
            for method in methods_for(&fj) {
                // 4 shards × 2 replicas, shard 2's primary permanently
                // dead, independent bounded transient plans everywhere
                // else: every trace contains failover (and possibly
                // breaker) events, and all of them are charge-free — the
                // audit must still reconcile exactly.
                let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
                let dead = s.primary_of(2);
                for i in 0..4 {
                    for r in 0..2 {
                        let plan = if (i, r) == (2, dead) {
                            FaultPlan::dead(11)
                        } else {
                            FaultPlan::transient(
                                11 ^ ((i as u64) << 24) ^ ((r as u64) << 32),
                                rate,
                                2,
                            )
                        };
                        s.replica_mut(i, r).set_fault_plan(plan);
                    }
                }
                let sink = Rc::new(RingSink::unbounded());
                s.set_recorder(Some(Recorder::new(sink.clone())));
                let budget = RetryBudget::new(RetryPolicy::standard());
                let ctx = ExecContext::with_budget(&s, &budget);
                // Bounded faults on the survivors can still (rarely) take
                // both replicas of a shard down at once; the trace must
                // reconcile either way.
                let _ = run_one(&ctx, &fj, method);
                let label = format!("replicated {qname}/{method}@{rate}");
                let events = sink.events();
                assert_reconciles(&label, charge_sum(&events), &s.usage());
                audited += 1;
                if events
                    .iter()
                    .any(|e| matches!(e.kind, EventKind::Failover { .. }))
                {
                    failover_traces += 1;
                }
            }
        }
    }
    assert!(audited >= 16, "audit matrix too small ({audited})");
    assert_eq!(
        failover_traces, audited,
        "every run scatters to the dead primary, so every trace fails over"
    );
}

/// The sampled-audit invariant, measured on the full replicated chaos
/// grid (q1–q4 × methods × fault rates, dead primary on shard 2 — the
/// same shape as the bench `chaos-replicated` table): for every cell,
///
/// - `charge_sum(kept events) + dropped_charge` reconciles with the
///   ledger exactly — sampling never changes what the ledger charges;
/// - the kept stream is a strict subsequence of the full stream;
/// - every chaos *signal* survives: faulted calls on closed-breaker
///   shards, circuit transitions, and at least one failover per outage
///   episode (steady-state failover repeats and open-breaker probe
///   repeats are volume, sampled at the span rate);
///
/// and in aggregate 1/16 sampling shrinks the recorded event count by
/// at least 8× — the affordability claim behind sampled tracing.
#[test]
fn sampled_audit_reconciles_and_reduces_on_replicated_chaos_grid() {
    use std::collections::BTreeSet;
    use textjoin::obs::{is_hot, EventKind, SampledSink, SamplePolicy, Sink};

    struct Tee {
        full: Rc<RingSink>,
        sampled: Rc<SampledSink>,
    }
    impl Sink for Tee {
        fn record(&self, ev: &Event) {
            self.full.record(ev);
            self.sampled.record(ev);
        }
    }

    let w = World::generate(WorldSpec::default());
    let schema = w.server.collection().schema();
    let mut total_full = 0u64;
    let mut total_kept = 0u64;
    for rate in [0.0, 0.05, 0.1, 0.2] {
        for (qname, q) in [
            ("q1", paper::q1(&w)),
            ("q2", paper::q2(&w)),
            ("q3", paper::q3(&w)),
            ("q4", paper::q4(&w)),
        ] {
            let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
                .expect("paper query prepares");
            let fj = p.foreign_join();
            for method in methods_for(&fj) {
                let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
                let dead = s.primary_of(2);
                for i in 0..4 {
                    for r in 0..2 {
                        let plan = if (i, r) == (2, dead) {
                            FaultPlan::dead(11)
                        } else {
                            FaultPlan::transient(
                                11 ^ ((i as u64) << 24) ^ ((r as u64) << 32),
                                rate,
                                2,
                            )
                        };
                        s.replica_mut(i, r).set_fault_plan(plan);
                    }
                }
                let full = Rc::new(RingSink::unbounded());
                let kept = Rc::new(RingSink::unbounded());
                let sampled = Rc::new(SampledSink::new(
                    kept.clone(),
                    SamplePolicy::one_in(0xCAFE, 16),
                ));
                s.set_recorder(Some(Recorder::new(Rc::new(Tee {
                    full: full.clone(),
                    sampled: sampled.clone(),
                }))));
                let budget = RetryBudget::new(RetryPolicy::standard());
                let ctx = ExecContext::with_budget(&s, &budget);
                let _ = run_one(&ctx, &fj, method);
                let label = format!("sampled {qname}/{method}@{rate}");

                // Reconciliation: kept charges + dropped charges == ledger.
                let mut sum = charge_sum(&kept.events());
                sum.accumulate(&sampled.dropped_charge());
                assert_reconciles(&label, sum, &s.usage());

                // Subsequence: kept seqs appear in the full stream, in order.
                let full_events = full.events();
                let kept_events = kept.events();
                let full_seqs: Vec<u64> = full_events.iter().map(|e| e.seq).collect();
                let kept_seqs: Vec<u64> = kept_events.iter().map(|e| e.seq).collect();
                assert!(
                    kept_seqs.windows(2).all(|w| w[0] < w[1]),
                    "{label}: kept stream out of order"
                );
                let full_set: BTreeSet<u64> = full_seqs.iter().copied().collect();
                assert!(
                    kept_seqs.iter().all(|s| full_set.contains(s)),
                    "{label}: kept an event the recorder never emitted"
                );

                // Chaos-signal retention under the episode rules.
                let kept_set: BTreeSet<u64> = kept_seqs.iter().copied().collect();
                let mut open: BTreeSet<usize> = BTreeSet::new();
                let mut failovers = (0u64, 0u64);
                for ev in &full_events {
                    match &ev.kind {
                        EventKind::Failover { .. } => {
                            failovers.0 += 1;
                            if kept_set.contains(&ev.seq) {
                                failovers.1 += 1;
                            }
                        }
                        EventKind::CircuitOpen { shard, .. } => {
                            open.insert(*shard);
                            assert!(kept_set.contains(&ev.seq), "{label}: circuit event lost");
                        }
                        EventKind::CircuitClose { shard, .. } => {
                            open.remove(shard);
                            assert!(kept_set.contains(&ev.seq), "{label}: circuit event lost");
                        }
                        EventKind::Call {
                            shard: Some(sh),
                            err: Some(_),
                            ..
                        } if open.contains(sh) => {} // open-breaker probe: may be sampled
                        k if is_hot(k) => {
                            assert!(kept_set.contains(&ev.seq), "{label}: faulted call lost");
                        }
                        _ => {}
                    }
                }
                assert!(
                    failovers.0 > 0,
                    "{label}: the dead primary must force failovers"
                );
                assert!(
                    failovers.1 >= 1,
                    "{label}: the failover story vanished from the sample"
                );

                total_full += full_events.len() as u64;
                total_kept += kept_events.len() as u64;
            }
        }
    }
    let ratio = total_full as f64 / total_kept as f64;
    assert!(
        ratio >= 8.0,
        "1/16 sampling must shrink the grid's event volume ≥8× (got {ratio:.2}: \
         {total_full} full vs {total_kept} kept)"
    );
}

/// Hedged reads charge the race loser and then rebate it: the trace must
/// carry both sides — the loser's `Call` charges *and* a `Rebate` with the
/// exact inverse — so the audit reconciles against the post-rebate ledger,
/// and the scheduler's hedge/cancel counters must agree with the emitted
/// `Hedge`/`Cancel` events one for one.
#[test]
fn hedge_and_cancel_traces_reconcile_with_the_rebated_ledger() {
    use textjoin::core::sched::{SchedConfig, Scheduler};
    use textjoin::obs::EventKind;

    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let mut hedged_traces = 0u32;
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for method in methods_for(&fj) {
            let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
            for i in 0..4 {
                let pri = s.primary_of(i);
                s.replica_mut(i, pri)
                    .set_fault_plan(FaultPlan::slow(11 ^ ((i as u64) << 24), 0.5));
            }
            let sink = Rc::new(RingSink::unbounded());
            s.set_recorder(Some(Recorder::new(sink.clone())));
            let budget = RetryBudget::new(RetryPolicy::standard());
            let sched = Scheduler::new(SchedConfig::new(0x7E97));
            let ctx = ExecContext::with_budget(&s, &budget).with_transport(&sched);
            run_one(&ctx, &fj, method).expect("slow replicas never fail the join");
            let label = format!("hedged {qname}/{method}");
            let events = sink.events();
            assert_reconciles(&label, charge_sum(&events), &s.usage());

            let hedges = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Hedge { .. }))
                .count() as u64;
            let cancels = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Cancel { .. }))
                .count() as u64;
            let rebates = events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Rebate { .. }))
                .count() as u64;
            assert_eq!(hedges, sched.hedges(), "{label}: hedge events vs counter");
            assert_eq!(cancels, sched.cancels(), "{label}: cancel events vs counter");
            assert_eq!(hedges, cancels, "{label}: every race has exactly one loser");
            assert!(
                rebates >= cancels,
                "{label}: every cancelled leg must carry its inverse charge"
            );
            if hedges > 0 {
                hedged_traces += 1;
            }
        }
    }
    assert!(hedged_traces > 0, "no trace in the matrix ever hedged");
}

/// Tail-based sampling under hedging and deadlines: a head-dropped span
/// that turns out to contain a `Cancel` or `DeadlineMiss` is retroactively
/// kept, so the sampled trace never loses a cancellation or deadline
/// story — while `charge_sum(kept) + dropped_charge` still reconciles with
/// the rebated ledger exactly.
#[test]
fn tail_sampling_keeps_cancellation_and_deadline_stories() {
    use std::collections::BTreeSet;
    use textjoin::core::sched::{SchedConfig, Scheduler};
    use textjoin::obs::{EventKind, SampledSink, SamplePolicy, Sink};

    struct Tee {
        full: Rc<RingSink>,
        sampled: Rc<SampledSink>,
    }
    impl Sink for Tee {
        fn record(&self, ev: &Event) {
            self.full.record(ev);
            self.sampled.record(ev);
        }
    }

    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let mut cancel_stories = 0u64;
    let mut miss_stories = 0u64;
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for method in methods_for(&fj) {
            let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
            for i in 0..4 {
                let pri = s.primary_of(i);
                s.replica_mut(i, pri)
                    .set_fault_plan(FaultPlan::slow(11 ^ ((i as u64) << 24), 0.5));
            }
            let full = Rc::new(RingSink::unbounded());
            let kept = Rc::new(RingSink::unbounded());
            let sampled = Rc::new(SampledSink::new(
                kept.clone(),
                SamplePolicy::one_in(0xCAFE, 16).with_tail_keep(),
            ));
            s.set_recorder(Some(Recorder::new(Rc::new(Tee {
                full: full.clone(),
                sampled: sampled.clone(),
            }))));
            let budget = RetryBudget::new(RetryPolicy::standard());
            // A deliberately tight deadline: the first crossing emits a
            // DeadlineMiss — flagged and traced, never an error.
            let sched = Scheduler::new(SchedConfig::new(0x7E97).with_deadline(5.0));
            let ctx = ExecContext::with_budget(&s, &budget).with_transport(&sched);
            run_one(&ctx, &fj, method).expect("deadline misses never error");
            let label = format!("tail {qname}/{method}");

            // The sampled-audit invariant holds with tail retention on.
            let mut sum = charge_sum(&kept.events());
            sum.accumulate(&sampled.dropped_charge());
            assert_reconciles(&label, sum, &s.usage());

            // Every cancellation and deadline miss survives sampling.
            let kept_set: BTreeSet<u64> = kept.events().iter().map(|e| e.seq).collect();
            for ev in &full.events() {
                match ev.kind {
                    EventKind::Cancel { .. } => {
                        cancel_stories += 1;
                        assert!(kept_set.contains(&ev.seq), "{label}: cancel lost");
                    }
                    EventKind::DeadlineMiss { .. } => {
                        miss_stories += 1;
                        assert!(kept_set.contains(&ev.seq), "{label}: deadline miss lost");
                    }
                    _ => {}
                }
            }
        }
    }
    assert!(cancel_stories > 0, "the matrix never cancelled a hedge");
    assert!(miss_stories > 0, "the matrix never crossed its deadline");
}

/// Attaching a recorder with the discard-everything sink must leave every
/// `Usage` field byte-identical to an unrecorded run — observation is free
/// by contract.
#[test]
fn noop_recorder_never_perturbs_the_ledger() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for rate in [0.0, 0.3] {
            for method in methods_for(&fj) {
                let run = |record: bool| -> Usage {
                    let mut s = TextServer::new(w.server.collection().clone());
                    s.set_fault_plan(FaultPlan::transient(11, rate, 2));
                    if record {
                        s.set_recorder(Some(Recorder::new(Rc::new(NoopSink))));
                    }
                    let ctx = ExecContext::new(&s);
                    run_one(&ctx, &fj, method).expect("bounded faults complete");
                    s.usage()
                };
                let bare = run(false);
                let recorded = run(true);
                assert_eq!(
                    bare, recorded,
                    "{qname}/{method}@{rate}: a no-op recorder changed the ledger"
                );
            }
        }
    }
}

/// The passivity contract extended to the *windowed monitor*: wiring the
/// full telemetry pipeline (monitor teed with a JSONL sink, exactly as
/// the bench harness attaches it) must leave every method's result
/// multiset and every ledger view — the single server's `Usage`, the
/// sharded aggregate, and each per-shard view — byte-identical to the
/// unmonitored run. Detectors may fire; they never charge.
#[test]
fn monitor_never_perturbs_results_or_ledgers() {
    use textjoin::obs::{FanoutSink, JsonlSink, Monitor, MonitorConfig, Sink};
    use textjoin::rel::table::Table;

    let w = compact_world(7);
    let schema = w.server.collection().schema();
    for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for method in methods_for(&fj) {
            // Single faulted server: result rows + the one ledger.
            let run_single = |monitored: bool| -> (Table, Usage) {
                let mut s = TextServer::new(w.server.collection().clone());
                s.set_fault_plan(FaultPlan::transient(11, 0.3, 2));
                let mon = Rc::new(Monitor::new(MonitorConfig::new(50.0)));
                if monitored {
                    let tee = Rc::new(FanoutSink::new(vec![
                        Rc::new(JsonlSink::new()) as Rc<dyn Sink>,
                        mon.clone(),
                    ]));
                    s.set_recorder(Some(Recorder::new(tee)));
                }
                let ctx = ExecContext::new(&s);
                let out = run_one(&ctx, &fj, method).expect("bounded faults complete");
                mon.finish();
                (out.table, s.usage())
            };
            let bare = run_single(false);
            let monitored = run_single(true);
            assert_eq!(
                bare.0, monitored.0,
                "{qname}/{method}: the monitor changed a result row"
            );
            assert_eq!(
                bare.1, monitored.1,
                "{qname}/{method}: the monitor changed the single-server ledger"
            );

            // Replicated sharded server with a degraded shard: result
            // rows, the aggregate ledger, and all four per-shard views.
            let run_sharded = |monitored: bool| -> (Table, Usage, Vec<Usage>) {
                let mut s =
                    ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
                for r in 0..2 {
                    s.replica_mut(1, r).set_fault_plan(FaultPlan::transient(
                        0x5EA7 ^ ((r as u64) << 32),
                        0.3,
                        2,
                    ));
                }
                let mon = Rc::new(Monitor::new(
                    MonitorConfig::new(50.0).with_skew(400_000, 320_000),
                ));
                if monitored {
                    s.set_recorder(Some(Recorder::new(mon.clone())));
                }
                let budget = RetryBudget::new(RetryPolicy::standard());
                let ctx = ExecContext::with_budget(&s, &budget);
                let out = run_one(&ctx, &fj, method).expect("bounded faults complete");
                mon.finish();
                let shards: Vec<Usage> = (0..4).map(|i| s.shard_usage(i)).collect();
                (out.table, s.usage(), shards)
            };
            let bare = run_sharded(false);
            let monitored = run_sharded(true);
            assert_eq!(
                bare.0, monitored.0,
                "{qname}/{method}: the monitor changed a sharded result row"
            );
            assert_eq!(
                bare.1, monitored.1,
                "{qname}/{method}: the monitor changed the aggregate ledger"
            );
            assert_eq!(
                bare.2, monitored.2,
                "{qname}/{method}: the monitor changed a per-shard ledger view"
            );
        }
    }
}

/// The trace↔ledger audit extended to transfers: an online migration runs
/// to completion twice — once fault-free (the control) and once with the
/// source primary permanently dead *and* a scripted destination outage
/// that interrupts one batch after a partially-charged timeout, forcing a
/// journal resume. In both runs, summing every recorded `Call` charge
/// (`search`/`xfer.out`/`xfer.in` alike) reconciles exactly with the
/// aggregate ledger (which folds the dedicated migration bucket). And the
/// interrupted run buys exactly the control's posting and document
/// totals: the timeout's delivered prefix is journaled, so resumption
/// ingests only the remainder — transferred postings are never re-bought.
#[test]
fn migration_transfer_traces_reconcile_and_never_rebuy_postings() {
    use textjoin::text::doc::DocId;
    use textjoin::text::faults::Fault;
    use textjoin::text::rebalance::{MigrationPlan, Move, MoveStatus};

    let w = compact_world(7);
    let n = w.server.collection().doc_count() as u32;
    let drain = |configure: &dyn Fn(&mut ShardedTextServer)| -> (Vec<Event>, Usage, Usage) {
        let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
        let sink = Rc::new(RingSink::unbounded());
        s.set_recorder(Some(Recorder::new(sink.clone())));
        s.begin_migration(MigrationPlan::new(
            vec![Move { range: (DocId(0), DocId(n)), src: 1, dst: 3 }],
            16,
        ));
        configure(&mut s);
        let mut steps = 0u32;
        while !s.journal().expect("journal exists").finished() {
            let _ = s.migrate_batch();
            steps += 1;
            assert!(steps < 10_000, "migration failed to drain");
        }
        assert!(s
            .journal()
            .expect("journal exists")
            .entries
            .iter()
            .all(|e| e.status == MoveStatus::Done));
        (sink.events(), s.usage(), s.migration_usage())
    };

    // Control: healthy replicas end to end.
    let (ctrl_events, ctrl_usage, ctrl_mig) = drain(&|_s| {});
    assert_reconciles("control migration", charge_sum(&ctrl_events), &ctrl_usage);
    assert_eq!(ctrl_mig.faults, 0);
    assert!(ctrl_mig.postings_processed > 0);

    // Interrupted: the source primary is dead for the whole drain (every
    // batch's out-leg fails over to the replica), and the destination
    // shard scripts a Timeout-then-Unavailable outage on one batch — the
    // fetched batch stays in flight and the next call resumes it.
    let (evts, usage, mig) = drain(&|s: &mut ShardedTextServer| {
        let src_pri = s.primary_of(1);
        s.replica_mut(1, src_pri).set_fault_plan(FaultPlan::dead(0xD1E));
        let dst_pri = s.primary_of(3);
        s.replica_mut(3, dst_pri).set_fault_plan(FaultPlan::scripted(vec![(
            1,
            Fault::Timeout { after_postings: 7 },
        )]));
        s.replica_mut(3, 1 - dst_pri)
            .set_fault_plan(FaultPlan::scripted(vec![(0, Fault::Unavailable)]));
    });
    assert_reconciles("interrupted migration", charge_sum(&evts), &usage);
    assert!(mig.faults >= 3, "dead primary legs + the scripted outage are booked");
    let jsonl: Vec<String> = evts.iter().map(|e| e.to_jsonl()).collect();
    assert!(
        jsonl.iter().any(|l| l.contains("migration_resume")),
        "the interrupted batch went through the journal-resume path"
    );
    assert!(jsonl.iter().any(|l| l.contains("xfer.out")));
    assert!(jsonl.iter().any(|l| l.contains("xfer.in")));

    // Exactly-once delivery, proven by the ledger: the interrupted run
    // ingests precisely the control's posting total (the timeout's prefix
    // plus the resumed remainder — never the prefix twice), and reads
    // each document's long form off a source replica exactly once.
    assert_eq!(mig.postings_processed, ctrl_mig.postings_processed);
    assert_eq!(mig.docs_long, ctrl_mig.docs_long);
}

/// The passivity contract extended to EXPLAIN ANALYZE: switching
/// `ExecHooks::analyze` on must leave the multi-join result multiset and
/// every ledger view — the single faulted server's `Usage`, the
/// replicated sharded aggregate, and each per-shard view — byte-identical
/// to the unanalyzed run, on both paper multi-join queries. Attribution
/// only reads ledgers the executor's methods already booked, and the
/// estimate walk prices plan nodes without issuing a single text call.
#[test]
fn explain_analyze_never_perturbs_results_or_ledgers() {
    use textjoin::core::cost::params::CostParams;
    use textjoin::core::exec::{execute_prepared, prepare_plan, ExecHooks};
    use textjoin::core::optimizer::multi::ExecutionSpace;
    use textjoin::rel::table::Table;

    let w = compact_world(7);
    for (qname, q) in [("q5", paper::q5(&w)), ("q6", paper::q6(&w))] {
        // Single faulted server: result rows + the one ledger.
        let run_single = |analyze: bool| -> (Table, Usage, bool) {
            let mut s = TextServer::new(w.server.collection().clone());
            s.set_fault_plan(FaultPlan::transient(11, 0.2, 2));
            let params = CostParams::mercury(s.doc_count() as f64);
            let (input, planned) = prepare_plan(
                &q,
                &w.catalog,
                &s,
                params,
                ExecutionSpace::PrlResiduals,
                None,
                None,
            )
            .expect("paper query plans");
            let hooks = ExecHooks { analyze, ..ExecHooks::default() };
            let out = execute_prepared(&input, &planned, &w.catalog, &s, &hooks)
                .expect("bounded faults complete");
            (out.table, s.usage(), out.plan_quality.is_some())
        };
        let bare = run_single(false);
        let analyzed = run_single(true);
        assert_eq!(
            bare.0, analyzed.0,
            "{qname}: EXPLAIN ANALYZE changed a result row"
        );
        assert_eq!(
            bare.1, analyzed.1,
            "{qname}: EXPLAIN ANALYZE changed the single-server ledger"
        );
        assert!(!bare.2, "{qname}: unanalyzed run grew a PlanQuality");
        assert!(analyzed.2, "{qname}: analyzed run must attach PlanQuality");

        // Replicated sharded server with a degraded shard: result rows,
        // the aggregate ledger, and all four per-shard views.
        let run_sharded = |analyze: bool| -> (Table, Usage, Vec<Usage>) {
            let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
            for r in 0..2 {
                s.replica_mut(1, r).set_fault_plan(FaultPlan::transient(
                    0x5EA7 ^ ((r as u64) << 32),
                    0.2,
                    2,
                ));
            }
            let params = CostParams::mercury(s.doc_count() as f64);
            let (input, planned) = prepare_plan(
                &q,
                &w.catalog,
                &s,
                params,
                ExecutionSpace::PrlResiduals,
                None,
                None,
            )
            .expect("paper query plans");
            let budget = RetryBudget::new(RetryPolicy::standard());
            let hooks = ExecHooks {
                analyze,
                retry_budget: Some(&budget),
                ..ExecHooks::default()
            };
            let out = execute_prepared(&input, &planned, &w.catalog, &s, &hooks)
                .expect("bounded faults complete");
            let shards: Vec<Usage> = (0..4).map(|i| s.shard_usage(i)).collect();
            (out.table, s.usage(), shards)
        };
        let bare = run_sharded(false);
        let analyzed = run_sharded(true);
        assert_eq!(
            bare.0, analyzed.0,
            "{qname}: EXPLAIN ANALYZE changed a sharded result row"
        );
        assert_eq!(
            bare.1, analyzed.1,
            "{qname}: EXPLAIN ANALYZE changed the aggregate ledger"
        );
        assert_eq!(
            bare.2, analyzed.2,
            "{qname}: EXPLAIN ANALYZE changed a per-shard ledger view"
        );
    }

    // Serving sessions: the config's `analyze` flag must leave every
    // tenant's invoice (and the result counts behind them) untouched —
    // only the plan-quality columns appear.
    use textjoin::core::serve::{Backend, ServeConfig, ServeSession, TenantSpec};
    let run_serve = |analyze: bool| -> Vec<(String, Usage, usize)> {
        let server = TextServer::new(w.server.collection().clone());
        let mut cfg = ServeConfig::new(CostParams::mercury(server.doc_count() as f64));
        cfg.analyze = analyze;
        let tenants = vec![
            TenantSpec::new("alpha", 1e9, 1),
            TenantSpec::new("beta", 1e9, 1),
        ];
        let stream = vec![
            (0usize, paper::q5(&w)),
            (1, paper::q6(&w)),
            (0, paper::q6(&w)),
            (1, paper::q5(&w)),
        ];
        let report =
            ServeSession::new(Backend::Single(&server), &w.catalog, tenants, cfg).run(&stream);
        report
            .tenants
            .iter()
            .map(|t| (t.name.clone(), t.invoice, t.cost_qs.len()))
            .collect()
    };
    let bare = run_serve(false);
    let analyzed = run_serve(true);
    for ((bn, bi, bq), (an, ai, aq)) in bare.iter().zip(analyzed.iter()) {
        assert_eq!(bn, an);
        assert_eq!(bi, ai, "{bn}: the analyze flag changed a tenant invoice");
        assert_eq!(*bq, 0, "{bn}: unanalyzed session recorded a cost_q");
        assert!(*aq > 0, "{an}: analyzed session must record cost_qs");
    }
}

/// The counterfactual-regret replays run every unchosen candidate on a
/// sandboxed clone of the collection: repeating them must be
/// byte-identical (the regret tables CI diffs), and the audited world's
/// real server ledger must never move — shadow execution is free by
/// contract.
#[test]
fn regret_replays_are_deterministic_and_never_touch_the_audited_ledger() {
    use textjoin_bench::experiments::{multi_join_regret, single_join_regret};

    let w = compact_world(7);
    let before = w.server.usage();

    let a = single_join_regret(&w, None);
    let b = single_join_regret(&w, None);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "fault-free regret table drifted between runs"
    );
    let c = single_join_regret(&w, Some((0.2, 2)));
    let d = single_join_regret(&w, Some((0.2, 2)));
    assert_eq!(
        format!("{c:?}"),
        format!("{d:?}"),
        "chaos regret table drifted between runs"
    );
    let (m1, e1) = multi_join_regret(&w);
    let (m2, e2) = multi_join_regret(&w);
    assert_eq!(e1, e2, "EXPLAIN ANALYZE render drifted between runs");
    assert_eq!(
        format!("{m1:?}"),
        format!("{m2:?}"),
        "multi-join regret table drifted between runs"
    );
    for rows in [&a, &c, &m1] {
        for r in rows {
            assert!(
                r.best_actual <= r.chosen_actual + 1e-9,
                "{}: best candidate costs more than the chosen one",
                r.query
            );
            assert!(r.regret >= 0.0 && r.regret_share >= 0.0);
        }
    }
    assert_eq!(
        w.server.usage(),
        before,
        "counterfactual replays charged the audited server"
    );
}
