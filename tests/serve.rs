//! Integration: the multi-tenant serving session.
//!
//! The headline invariants: every *admitted* query returns the
//! brute-force-exact multiset and every refused query surfaces a typed
//! error (no silent drops); the aggregate server ledger decomposes
//! exactly into Σ per-tenant invoices (+ the migration bucket); a faulty
//! tenant's presence leaves healthy tenants' invoices byte-identical; a
//! single-tenant session is passive (byte-identical to the sequential
//! `plan_and_execute` pipeline); and the session caches strictly reduce
//! total charge on repeated-spec streams without changing any result.

use textjoin::core::cost::params::CostParams;
use textjoin::core::exec::{canonical_rows, plan_and_execute, prepare_plan};
use textjoin::core::optimizer::multi::ExecutionSpace;
use textjoin::core::optimizer::plan::MultiJoinQuery;
use textjoin::core::serve::{Backend, ServeConfig, ServeError, ServeSession, TenantSpec};
use textjoin::obs::EventKind;
use textjoin::rel::catalog::Catalog;
use textjoin::rel::ops::filter;
use textjoin::rel::strmatch::contains_term;
use textjoin::rel::table::Table;
use textjoin::rel::value::Value;
use textjoin::text::doc::DocId;
use textjoin::rel::expr::CmpOp;
use textjoin::text::faults::{FaultKinds, FaultPlan};
use textjoin::text::server::{TextServer, Usage};
use textjoin::text::shard::ShardedTextServer;
use textjoin::text::TextService;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn world() -> World {
    World::generate(WorldSpec {
        background_docs: 150,
        students: 30,
        projects: 10,
        ..WorldSpec::default()
    })
}

fn params_for(w: &World) -> CostParams {
    CostParams::mercury(w.server.doc_count() as f64)
}

/// Brute-force multi-join oracle for `Projection::Full` queries: scans
/// every tuple combination × every document directly against the
/// collection (no index, no search API) and shapes rows the way
/// `canonical_rows` shapes executor output.
fn brute_force_rows(q: &MultiJoinQuery, catalog: &Catalog, server: &TextServer) -> Vec<String> {
    let coll = server.collection();
    let schema = coll.schema();
    // Locally filtered base tables, in query order.
    let tables: Vec<Table> = q
        .relations
        .iter()
        .map(|spec| {
            let t = catalog.table(&spec.name).expect("relation exists");
            filter(t, &spec.local_pred)
        })
        .collect();
    // Every combination of one row per relation.
    let mut combos: Vec<Vec<usize>> = vec![vec![]];
    for t in &tables {
        let mut next = Vec::new();
        for c in &combos {
            for i in 0..t.len() {
                let mut c2 = c.clone();
                c2.push(i);
                next.push(c2);
            }
        }
        combos = next;
    }
    let mut rows = Vec::new();
    for combo in &combos {
        // Relational join predicates.
        let rel_ok = q.rel_joins.iter().all(|j| {
            let lt = &tables[j.left_rel];
            let rt = &tables[j.right_rel];
            let lv = lt.rows()[combo[j.left_rel]].get(lt.col(&j.left_col));
            let rv = rt.rows()[combo[j.right_rel]].get(rt.col(&j.right_col));
            match j.op {
                CmpOp::Eq => lv == rv,
                CmpOp::Ne => lv != rv,
                _ => panic!("oracle only handles Eq/Ne rel joins"),
            }
        });
        if !rel_ok {
            continue;
        }
        'docs: for d in 0..coll.doc_count() {
            let id = DocId(d as u32);
            let doc = coll.document(id).expect("dense docids");
            for (term, field) in &q.selections {
                let fid = schema.field_by_name(field).expect("field exists");
                if !doc.values(fid).iter().any(|v| contains_term(v, term)) {
                    continue 'docs;
                }
            }
            for f in &q.foreign {
                let t = &tables[f.rel];
                let Some(needle) = t.rows()[combo[f.rel]].get(t.col(&f.column)).as_str() else {
                    continue 'docs;
                };
                let fid = schema.field_by_name(&f.field).expect("field exists");
                if needle.trim().is_empty()
                    || !doc.values(fid).iter().any(|v| contains_term(v, needle))
                {
                    continue 'docs;
                }
            }
            // Shape the row exactly like the executor's output schema:
            // qualified relation columns, then docid + document fields.
            let mut cols: Vec<String> = Vec::new();
            for (ri, t) in tables.iter().enumerate() {
                for (c, def) in t.schema().iter() {
                    cols.push(format!(
                        "{}.{}={}",
                        q.relations[ri].name,
                        def.name,
                        t.rows()[combo[ri]].get(c)
                    ));
                }
            }
            cols.push(format!("docid={}", Value::str(id.to_string())));
            for (fid, def) in schema.iter() {
                let vs = doc.values(fid);
                let v = if vs.is_empty() {
                    Value::Null
                } else {
                    Value::str(vs.join("; "))
                };
                cols.push(format!("{}={}", def.name, v));
            }
            cols.sort();
            rows.push(cols.join(", "));
        }
    }
    rows.sort();
    rows
}

/// 4 shards × 2 replicas with shard 2's primary permanently dead: every
/// scatter to shard 2 pays deterministic failover.
fn dead_primary_server(w: &World) -> ShardedTextServer {
    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    let dead = s.primary_of(2);
    s.replica_mut(2, dead).set_fault_plan(FaultPlan::dead(77));
    s
}

/// Like `dead_primary_server`, but the dead replica only ever answers
/// `Unavailable` — no partial-postings timeouts. Every failed attempt
/// then charges identically *regardless of how far the plan's fault
/// stream has advanced*, which is what makes byte-identical per-tenant
/// invoices on a shared server possible. (`FaultPlan::dead` draws
/// `Timeout { after_postings }` faults whose partial charge depends on
/// the RNG position, so a co-tenant's traffic would shift the draws the
/// healthy tenants see — a property of the shared server, not a leak in
/// the session layer.)
fn unavailable_primary_server(w: &World) -> ShardedTextServer {
    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    let dead = s.primary_of(2);
    let kinds = FaultKinds {
        unavailable: true,
        timeout: false,
        cap_reduced: false,
        slow: false,
    };
    s.replica_mut(2, dead)
        .set_fault_plan(FaultPlan::random(77, 1.0, kinds, 0));
    s
}

/// A mixed 4-tenant stream over the paper's multi-join queries.
fn mixed_stream(w: &World) -> Vec<(usize, MultiJoinQuery)> {
    let q5 = paper::q5(w);
    let q6 = paper::q6(w);
    vec![
        (0, q5.clone()),
        (1, q6.clone()),
        (2, q5.clone()),
        (3, q5.clone()),
        (0, q6.clone()),
        (3, q6.clone()),
        (1, q5.clone()),
        (2, q6),
        (3, q5),
    ]
}

#[test]
fn admitted_queries_match_brute_force_and_refusals_are_typed() {
    let w = world();
    let mut server = dead_primary_server(&w);
    let mut cfg = ServeConfig::new(params_for(&w));
    // Tight enough that the stream actually sheds and rejects: a small
    // queue, a slow drain, and one starved budget.
    cfg.queue_cap = 2;
    cfg.quantum = 40.0;
    cfg.degrade_depth = 2;
    let tenants = vec![
        TenantSpec::new("alpha", 1e9, 2),
        TenantSpec::new("beta", 1e9, 1),
        TenantSpec::new("gamma", 60.0, 0),
        TenantSpec::new("delta", 1e9, 3),
    ];
    let stream = mixed_stream(&w);
    let session = ServeSession::new(Backend::Elastic(&mut server), &w.catalog, tenants, cfg);
    let report = session.run(&stream);

    // No silent drops: one typed record per stream request, in order.
    assert_eq!(report.records.len(), stream.len());
    for (i, r) in report.records.iter().enumerate() {
        assert_eq!(r.arrival, i as u64);
        assert_eq!(r.tenant, stream[i].0);
    }

    // Every admitted-and-completed query is brute-force exact, even
    // under forced degradation and dead-primary failover.
    let mut completed = 0;
    for r in &report.records {
        if let Ok(out) = &r.outcome {
            let expected = brute_force_rows(&stream[r.arrival as usize].1, &w.catalog, &w.server);
            assert_eq!(
                canonical_rows(&out.table),
                expected,
                "arrival {} disagrees with the brute-force oracle",
                r.arrival
            );
            completed += 1;
        }
    }
    assert!(completed > 0, "the session completed work");

    // The refusal machinery actually engaged, and each refusal is typed.
    let shed: Vec<_> = report
        .records
        .iter()
        .filter(|r| matches!(r.outcome, Err(ServeError::Shed { .. })))
        .collect();
    let rejected: Vec<_> = report
        .records
        .iter()
        .filter(|r| matches!(r.outcome, Err(ServeError::Rejected { .. })))
        .collect();
    assert!(!shed.is_empty(), "the bounded queue shed under overload");
    assert!(!rejected.is_empty(), "the starved budget rejected");
    for r in &shed {
        assert_eq!(r.invoice, Usage::default(), "shed requests charge nothing");
    }
    for r in &rejected {
        assert_eq!(r.tenant, 2, "only the starved tenant is rejected");
        assert_eq!(r.invoice, Usage::default(), "rejections charge nothing");
    }

    // Shedding respects priority: the lowest-priority tenant with queued
    // work is the victim, never the highest.
    assert!(shed.iter().all(|r| r.tenant != 3), "priority-3 work is never shed first");

    // The aggregate ledger decomposes exactly into Σ tenant invoices
    // (+ the migration bucket, zero here — no monitor, no advice).
    let mut sum = Usage::default();
    for t in &report.tenants {
        sum.accumulate(&t.invoice);
    }
    sum.accumulate(&report.migration);
    assert_eq!(report.aggregate.invocations, sum.invocations);
    assert_eq!(report.aggregate.docs_short, sum.docs_short);
    assert_eq!(report.aggregate.docs_long, sum.docs_long);
    assert_eq!(report.aggregate.postings_processed, sum.postings_processed);
    assert_eq!(report.aggregate.faults, sum.faults);
    assert_eq!(report.aggregate.retries, sum.retries);
    assert!((report.aggregate.total_cost() - sum.total_cost()).abs() < 1e-9);
}

#[test]
fn faulty_tenant_presence_leaves_healthy_invoices_byte_identical() {
    let w = world();
    let q5 = paper::q5(&w);
    let q6 = paper::q6(&w);
    let tenants = || {
        vec![
            TenantSpec::new("alpha", 1e9, 1),
            TenantSpec::new("beta", 1e9, 1),
            TenantSpec::new("hammer", 1e9, 1),
        ]
    };
    // Isolation config: no forced degradation, no shedding — the
    // *deliberate* cross-tenant couplings stay out of the picture so the
    // invariant under test is purely about charges.
    let cfg = |w: &World| {
        let mut c = ServeConfig::new(params_for(w));
        c.queue_cap = 1000;
        c.degrade_depth = 0;
        c.quantum = 1e9;
        c
    };

    // Run A: healthy tenants only.
    let healthy: Vec<(usize, MultiJoinQuery)> = vec![
        (0, q5.clone()),
        (1, q6.clone()),
        (0, q6.clone()),
        (1, q5.clone()),
    ];
    let mut server_a = unavailable_primary_server(&w);
    let report_a = ServeSession::new(
        Backend::Elastic(&mut server_a),
        &w.catalog,
        tenants(),
        cfg(&w),
    )
    .run(&healthy);

    // Run B: the same healthy requests with a third tenant's queries —
    // which hammer the dead-primary shard — interleaved between them.
    let mixed: Vec<(usize, MultiJoinQuery)> = vec![
        (2, q5.clone()),
        (0, q5.clone()),
        (2, q5.clone()),
        (1, q6.clone()),
        (2, q6.clone()),
        (0, q6),
        (2, q5.clone()),
        (1, q5),
    ];
    let mut server_b = unavailable_primary_server(&w);
    let report_b = ServeSession::new(
        Backend::Elastic(&mut server_b),
        &w.catalog,
        tenants(),
        cfg(&w),
    )
    .run(&mixed);

    // The hammer tenant really pays failover: faults and retries land in
    // its invoice and nobody else's.
    let hammer = &report_b.tenants[2];
    assert!(hammer.invoice.faults > 0, "the dead primary faults the hammer tenant");
    assert!(hammer.invoice.retries > 0);

    // Healthy tenants' invoices do not move: every count byte-identical,
    // every time field equal to 1e-9. (The time fields are deltas of the
    // server's *running* ledger, so interleaving shifts the absolute
    // offsets the subtraction happens at — equal charges can differ in
    // the last ulp. The counts have no such artifact and must be exact.)
    for ti in 0..2 {
        let a = &report_a.tenants[ti].invoice;
        let b = &report_b.tenants[ti].invoice;
        assert_eq!(a.invocations, b.invocations, "tenant {ti} invocations moved");
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.postings_processed, b.postings_processed, "tenant {ti} postings moved");
        assert_eq!(a.docs_short, b.docs_short);
        assert_eq!(a.docs_long, b.docs_long);
        assert_eq!(a.faults, b.faults, "tenant {ti} faults moved");
        assert_eq!(a.retries, b.retries);
        assert!((a.time_invocation - b.time_invocation).abs() < 1e-9);
        assert!((a.time_processing - b.time_processing).abs() < 1e-9);
        assert!((a.time_transmission - b.time_transmission).abs() < 1e-9);
        assert!((a.time_backoff - b.time_backoff).abs() < 1e-9);
        assert!(
            (report_a.tenants[ti].spent - report_b.tenants[ti].spent).abs() < 1e-9,
            "tenant {ti} spent moved"
        );
        let (ca, cb) = (&report_a.tenants[ti].costs, &report_b.tenants[ti].costs);
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(cb) {
            assert!((x - y).abs() < 1e-9, "tenant {ti} per-query cost moved");
        }
    }
}

#[test]
fn zero_budget_tenant_is_fully_rejected_with_zero_charges() {
    let w = world();
    let mut cfg = ServeConfig::new(params_for(&w));
    cfg.quantum = 1e9;
    let tenants = vec![
        TenantSpec::new("payer", 1e9, 1),
        TenantSpec::new("broke", 0.0, 1),
    ];
    let q5 = paper::q5(&w);
    let stream = vec![
        (1, q5.clone()),
        (0, q5.clone()),
        (1, q5.clone()),
        (1, q5),
    ];
    let mut server = dead_primary_server(&w);
    let before = server.usage();
    let report =
        ServeSession::new(Backend::Elastic(&mut server), &w.catalog, tenants, cfg).run(&stream);

    let broke = &report.tenants[1];
    assert_eq!(broke.rejected, 3, "every zero-budget request is rejected");
    assert_eq!(broke.admitted, 0);
    assert_eq!(broke.invoice, Usage::default(), "zero charges for the zero budget");
    for r in report.records.iter().filter(|r| r.tenant == 1) {
        assert!(matches!(r.outcome, Err(ServeError::Rejected { .. })));
    }
    // The payer is untouched; all server charges belong to it.
    assert_eq!(report.tenants[0].completed, 1);
    let delta = server.usage().since(&before);
    assert_eq!(delta.invocations, report.tenants[0].invoice.invocations);
}

#[test]
fn single_tenant_session_is_passive() {
    let w = world();
    let params = params_for(&w);
    // Distinct specs: no cache overlap, so the session layer must add
    // exactly nothing to what the sequential pipeline does.
    let stream = vec![(0, paper::q5(&w)), (0, paper::q6(&w))];

    let serve_server = TextServer::new(w.server.collection().clone());
    let mut cfg = ServeConfig::new(params);
    cfg.quantum = 1e9;
    cfg.degrade_depth = 0;
    let report = ServeSession::new(
        Backend::Single(&serve_server),
        &w.catalog,
        vec![TenantSpec::new("solo", 1e9, 1)],
        cfg,
    )
    .run(&stream);

    // Sequential baseline on an identical fresh server.
    let base_server = TextServer::new(w.server.collection().clone());
    let mut base_usage = Vec::new();
    let mut base_rows = Vec::new();
    let mut base_costs = Vec::new();
    for (_, q) in &stream {
        let before = base_server.usage();
        let (_, out) = plan_and_execute(
            q,
            &w.catalog,
            &base_server,
            params,
            ExecutionSpace::Prl,
        )
        .expect("baseline runs");
        base_usage.push(base_server.usage().since(&before));
        base_rows.push(canonical_rows(&out.table));
        base_costs.push(out.total_cost);
    }

    assert_eq!(report.records.len(), 2);
    for (i, r) in report.records.iter().enumerate() {
        let out = r.outcome.as_ref().expect("admitted and completed");
        assert_eq!(canonical_rows(&out.table), base_rows[i], "request {i} rows differ");
        assert_eq!(r.invoice, base_usage[i], "request {i} invoice differs");
        assert_eq!(out.total_cost, base_costs[i], "request {i} cost differs");
    }
    assert_eq!(
        serve_server.usage(),
        base_server.usage(),
        "the session leaves the exact ledger the sequential pipeline leaves"
    );
}

#[test]
fn session_caches_strictly_reduce_charges_on_repeated_specs() {
    let w = world();
    let params = params_for(&w);
    let q5 = paper::q5(&w);
    let stream: Vec<(usize, MultiJoinQuery)> =
        (0..4).map(|_| (0usize, q5.clone())).collect();

    let serve_server = TextServer::new(w.server.collection().clone());
    let mut cfg = ServeConfig::new(params);
    cfg.quantum = 1e9;
    cfg.degrade_depth = 0;
    let report = ServeSession::new(
        Backend::Single(&serve_server),
        &w.catalog,
        vec![TenantSpec::new("solo", 1e9, 1)],
        cfg,
    )
    .run(&stream);

    // Per-execution baseline: the same stream through the sequential
    // pipeline, whose probe cache dies with each execution.
    let base_server = TextServer::new(w.server.collection().clone());
    let mut base_total = 0.0;
    let mut base_rows = None;
    for (_, q) in &stream {
        let (_, out) = plan_and_execute(
            q,
            &w.catalog,
            &base_server,
            params,
            ExecutionSpace::Prl,
        )
        .expect("baseline runs");
        base_total += out.total_cost;
        base_rows = Some(canonical_rows(&out.table));
    }
    let base_rows = base_rows.expect("stream non-empty");

    // Results unchanged, charges strictly reduced, sharing visible.
    let mut serve_total = 0.0;
    for r in &report.records {
        let out = r.outcome.as_ref().expect("completed");
        assert_eq!(canonical_rows(&out.table), base_rows);
        serve_total += out.total_cost;
    }
    assert!(
        serve_total < base_total,
        "session caches must strictly reduce charge: {serve_total} vs {base_total}"
    );
    let (hits, _, _) = report.tenants[0].probe_cache;
    assert!(hits > 0, "the session probe cache took hits across executions");
    assert!(report.tenants[0].plan_hits >= 3, "repeat specs hit the plan cache");

    // The trace↔ledger audit stays exact with the charge-free cache
    // events in the stream: summing every recorded charge reproduces the
    // aggregate ledger, and cache hits carry no charge at all.
    let mut cache_hits = 0;
    let mut sum_inv = 0i64;
    let mut sum_time = 0.0;
    for ev in &report.trace {
        if let EventKind::CacheHit { .. } = ev.kind {
            cache_hits += 1;
            assert!(ev.kind.charge().is_none(), "cache hits are charge-free");
        }
        if let Some(c) = ev.kind.charge() {
            sum_inv += c.invocations;
            sum_time += c.time_invocation + c.time_processing + c.time_transmission + c.time_backoff;
        }
    }
    assert!(cache_hits > 0, "cache hits are visible in the trace");
    assert_eq!(sum_inv, report.aggregate.invocations as i64);
    assert!((sum_time - report.aggregate.total_cost()).abs() < 1e-9);
}

#[test]
fn midflight_budget_guard_aborts_and_reconciles_partial_charges() {
    let w = world();
    let params = params_for(&w);
    let q5 = paper::q5(&w);

    // Learn the estimate and the actual on identical scratch servers.
    // Every shard's primary is dead, so every scatter leg pays failover
    // the zero-history estimate cannot price — actuals overrun the
    // estimate, which is exactly the overrun the guard exists for.
    let all_dead = |w: &World| {
        let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
        for i in 0..4 {
            let dead = s.primary_of(i);
            s.replica_mut(i, dead)
                .set_fault_plan(FaultPlan::dead(77 + i as u64));
        }
        s
    };
    let scratch = all_dead(&w);
    scratch.set_stats_routing(true);
    let (_, planned) = prepare_plan(
        &q5,
        &w.catalog,
        &scratch,
        params,
        ExecutionSpace::Prl,
        None,
        None,
    )
    .expect("plans");
    let est = planned.est_cost;
    let actual_server = all_dead(&w);
    actual_server.set_stats_routing(true);
    let (_, out) = plan_and_execute(&q5, &w.catalog, &actual_server, params, ExecutionSpace::Prl)
        .expect("runs");
    assert!(
        out.total_cost > est,
        "fixture: failover actuals ({}) must overrun the estimate ({est})",
        out.total_cost
    );

    // Budget between estimate and actual: admitted, then aborted.
    let budget = (est + out.total_cost) / 2.0;
    let mut server = all_dead(&w);
    let mut cfg = ServeConfig::new(params);
    cfg.quantum = 1e9;
    let report = ServeSession::new(
        Backend::Elastic(&mut server),
        &w.catalog,
        vec![TenantSpec::new("capped", budget, 1)],
        cfg,
    )
    .run(&[(0, q5)]);

    let r = &report.records[0];
    let Err(ServeError::BudgetExhausted { spent, remaining }) = &r.outcome else {
        panic!("expected a mid-flight budget abort, got {:?}", r.outcome);
    };
    assert!(*spent > 0.0, "partial work was charged");
    assert!(*remaining <= budget);
    assert_eq!(report.tenants[0].budget_aborted, 1);
    // Partial charges are reconciled: the tenant's invoice is exactly
    // the server's ledger delta, and the decomposition still holds.
    assert_eq!(report.tenants[0].invoice, r.invoice);
    assert_eq!(report.aggregate, r.invoice);
    // The typed event is in the trace.
    assert!(report
        .trace
        .iter()
        .any(|e| matches!(e.kind, EventKind::BudgetExhausted { .. })));
}

#[test]
fn session_closes_the_rebalance_and_drift_loops() {
    let w = world();
    let params = params_for(&w);
    // A degraded hot shard: replicas fault transiently, so its invoice
    // share climbs and the monitor's skew detector derives advice.
    let mut server = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    for r in 0..2 {
        server
            .replica_mut(1, r)
            .set_fault_plan(FaultPlan::transient(0x5EA7 ^ ((r as u64) << 32), 0.35, 2));
    }
    let mut cfg = ServeConfig::new(params);
    cfg.quantum = 1e9;
    cfg.degrade_depth = 0;
    cfg.monitor = Some(
        textjoin::obs::MonitorConfig::new(100.0).with_skew(400_000, 320_000),
    );
    cfg.migration_budget = 1e9;
    cfg.adopt_drift_every = 3;
    let epoch_before = server.topology_epoch();
    let q5 = paper::q5(&w);
    let q6 = paper::q6(&w);
    let stream: Vec<(usize, MultiJoinQuery)> = (0..6)
        .flat_map(|i| vec![(i % 2, q5.clone()), ((i + 1) % 2, q6.clone())])
        .collect();
    let report = ServeSession::new(
        Backend::Elastic(&mut server),
        &w.catalog,
        vec![TenantSpec::new("a", 1e9, 1), TenantSpec::new("b", 1e9, 1)],
        cfg,
    )
    .run(&stream);

    // The drift loop closed: refits were adopted into the live params.
    assert!(report.refits > 0, "calibration refits were adopted");
    // The rebalance loop closed: advice was executed under the session
    // migration budget, moving documents and advancing the epoch.
    assert!(report.migrated_docs > 0, "monitor advice was auto-executed");
    assert!(server.topology_epoch() > epoch_before);
    assert!(report.migration.invocations > 0, "transfers billed the migration bucket");

    // Everything completed still matches the oracle — a mid-session
    // topology change must never change an answer.
    for r in &report.records {
        let out = r.outcome.as_ref().expect("stream completes");
        let expected = brute_force_rows(&stream[r.arrival as usize].1, &w.catalog, &w.server);
        assert_eq!(
            canonical_rows(&out.table),
            expected,
            "arrival {} wrong after rebalance/refit",
            r.arrival
        );
    }

    // And the decomposition holds with a non-zero migration bucket.
    let mut sum = Usage::default();
    for t in &report.tenants {
        sum.accumulate(&t.invoice);
    }
    sum.accumulate(&report.migration);
    assert_eq!(report.aggregate.invocations, sum.invocations);
    assert_eq!(report.aggregate.docs_long, sum.docs_long);
    assert_eq!(report.aggregate.faults, sum.faults);
    assert!((report.aggregate.total_cost() - sum.total_cost()).abs() < 1e-9);
}
