//! Trace-driven cost-model re-calibration, end to end.
//!
//! The flight recorder stamps every server call with the exact `Charge`
//! the ledger booked. Calibration inverts that: replay a recorded trace,
//! fit the per-unit constants by least squares over the charge vectors,
//! and hand the planner a `CostParams` grounded in observation instead of
//! configuration. These tests close the loop on a server whose *true*
//! constants differ from the configured ones — the situation the paper's
//! §4.1 calibration experiment simulates.

use std::rc::Rc;

use textjoin::core::cost::params::CostParams;
use textjoin::core::exec::{plan_and_execute, plan_and_execute_with, row_strings};
use textjoin::core::methods::ExecContext;
use textjoin::core::optimizer::multi::ExecutionSpace;
use textjoin::obs::{calibrate_trace, Event, Recorder, RingSink, SampledSink, SamplePolicy, Sink};
use textjoin::text::faults::FaultPlan;
use textjoin::text::server::{CostConstants, TextServer};
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn compact_world(seed: u64) -> World {
    World::generate(WorldSpec {
        seed,
        background_docs: 120,
        students: 30,
        projects: 10,
        ..WorldSpec::default()
    })
}

/// A server whose true per-unit prices differ from every configured
/// default — nothing the calibrator could recover by accident.
fn skewed_constants() -> CostConstants {
    CostConstants {
        c_i: 4.5,
        c_p: 0.000_25,
        c_s: 0.042,
        c_l: 1.75,
    }
}

/// Runs a retrieval-heavy method mix against `server`, recording into
/// `sink`s already attached: q3 and q4 under TS (with long-form
/// reconstruction) and P+RTP — enough variety that invocations, postings,
/// short forms, and long forms all vary independently across calls.
fn run_workload(w: &World, server: &TextServer) {
    let schema = server.collection().schema();
    for q in [paper::q3(w), paper::q4(w)] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema).expect("query prepares");
        let fj = p.foreign_join();
        let ctx = ExecContext::new(server);
        textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true).expect("TS runs");
        textjoin::core::methods::probe::probe_rtp(&ctx, &fj, &[0]).expect("P+RTP runs");
    }
}

#[test]
fn calibrator_recovers_generating_constants_within_5_percent() {
    let w = compact_world(7);
    let truth = skewed_constants();
    let server = TextServer::with_constants(w.server.collection().clone(), truth);
    let sink = Rc::new(RingSink::unbounded());
    server.set_recorder(Some(Recorder::new(sink.clone())));
    run_workload(&w, &server);

    let cal = calibrate_trace(&sink.events());
    for (fit, want) in [
        (&cal.c_i, truth.c_i),
        (&cal.c_p, truth.c_p),
        (&cal.c_s, truth.c_s),
        (&cal.c_l, truth.c_l),
    ] {
        assert!(
            fit.determined,
            "{}: the workload must determine every component",
            fit.name
        );
        let rel = (fit.fitted - want).abs() / want;
        assert!(
            rel <= 0.05,
            "{}: fitted {} vs true {} ({}% off)",
            fit.name,
            fit.fitted,
            want,
            rel * 100.0
        );
    }
    // Linear pricing, full trace: the fit is exact, not merely within 5%.
    assert!(
        cal.rms_residual() < 1e-9,
        "linear charges must fit with ~zero residual, got {}",
        cal.rms_residual()
    );
}

#[test]
fn calibration_from_a_sampled_trace_recovers_the_same_constants() {
    struct Tee {
        full: Rc<RingSink>,
        sampled: Rc<SampledSink>,
    }
    impl Sink for Tee {
        fn record(&self, ev: &Event) {
            self.full.record(ev);
            self.sampled.record(ev);
        }
    }

    // Head sampling keeps or drops whole spans, and a single-server run
    // is one span per method — all or nothing. Sample where sampling is
    // actually deployed: the sharded scatter/gather topology, whose
    // per-gather spans make a 1/16 sample a real sub-workload. The full
    // default world supplies enough gathers to matter.
    let w = World::generate(WorldSpec::default());
    let truth = skewed_constants();
    let server = textjoin::text::shard::ShardedTextServer::with_constants(
        w.server.collection(),
        4,
        0x5AD,
        truth,
    );
    let full = Rc::new(RingSink::unbounded());
    let kept = Rc::new(RingSink::unbounded());
    let sampled = Rc::new(SampledSink::new(
        kept.clone(),
        SamplePolicy::one_in(0xCAFE, 16),
    ));
    server.set_recorder(Some(Recorder::new(Rc::new(Tee {
        full: full.clone(),
        sampled,
    }))));
    let schema = w.server.collection().schema();
    for q in [paper::q3(&w), paper::q4(&w)] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema).expect("query prepares");
        let fj = p.foreign_join();
        let ctx = ExecContext::new(&server);
        textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true).expect("TS runs");
        textjoin::core::methods::probe::probe_rtp(&ctx, &fj, &[0]).expect("P+RTP runs");
    }

    // The keep decision never inspects charges, so the kept calls are an
    // unbiased charge sample: whatever the sample determines, it
    // determines *exactly* (every row still lies on the true price plane).
    let cal = calibrate_trace(&kept.events());
    assert!(
        kept.events().len() * 4 < full.events().len(),
        "sampling must actually drop most of this healthy trace"
    );
    let mut determined = 0;
    for (fit, want) in [
        (&cal.c_i, truth.c_i),
        (&cal.c_p, truth.c_p),
        (&cal.c_s, truth.c_s),
        (&cal.c_l, truth.c_l),
    ] {
        if fit.determined {
            determined += 1;
            let rel = (fit.fitted - want).abs() / want;
            assert!(
                rel <= 0.05,
                "{}: sampled fit {} vs true {}",
                fit.name,
                fit.fitted,
                want
            );
        }
    }
    assert!(
        determined >= 3,
        "a 1/16 sample of this workload must still determine most components"
    );
}

#[test]
fn planner_adopts_calibrated_params_and_preserves_results() {
    let w = compact_world(7);
    let truth = skewed_constants();

    // Record a calibration workload against the mispriced server.
    let traced = TextServer::with_constants(w.server.collection().clone(), truth);
    let sink = Rc::new(RingSink::unbounded());
    traced.set_recorder(Some(Recorder::new(sink.clone())));
    run_workload(&w, &traced);
    let cal = calibrate_trace(&sink.events());

    // Plan q5 twice against a fresh mispriced server: once with the
    // configured (wrong) constants, once adopting the calibration. Method
    // equivalence guarantees identical result rows either way — adoption
    // may change the *plan*, never the answer.
    let params = CostParams::mercury(w.server.doc_count() as f64);
    let q5 = paper::q5(&w);
    let run = |cal: Option<&textjoin::obs::TraceCalibration>| {
        let server = TextServer::with_constants(w.server.collection().clone(), truth);
        let (planned, outcome) = plan_and_execute_with(
            &q5,
            &w.catalog,
            &server,
            params,
            ExecutionSpace::PrlResiduals,
            cal,
        )
        .expect("q5 plans and executes");
        (planned, row_strings(&outcome.table))
    };
    let (_, rows_configured) = run(None);
    let (planned_cal, rows_calibrated) = run(Some(&cal));
    assert_eq!(
        rows_configured, rows_calibrated,
        "calibration must never change the result multiset"
    );
    drop(planned_cal);

    // Adoption visibly reprices the plan: the drift table records how far
    // each configured constant was from the server's true price.
    let adopted = params.with_calibration(&cal);
    for (component, truth_v, configured) in [
        ("c_i", truth.c_i, params.constants.c_i),
        ("c_p", truth.c_p, params.constants.c_p),
        ("c_s", truth.c_s, params.constants.c_s),
        ("c_l", truth.c_l, params.constants.c_l),
    ] {
        let want = (truth_v - configured) / configured;
        let got = adopted
            .drift(component)
            .unwrap_or_else(|| panic!("{component} missing from drift table"));
        assert!(
            (got - want).abs() < 5e-3,
            "{component}: drift {got} vs expected {want}"
        );
    }
}

#[test]
fn calibration_refits_the_fault_model_from_observed_backoff() {
    let w = compact_world(7);
    let mut server = TextServer::new(w.server.collection().clone());
    server.set_fault_plan(FaultPlan::transient(0xC0FFEE, 0.3, 2));
    let sink = Rc::new(RingSink::unbounded());
    server.set_recorder(Some(Recorder::new(sink.clone())));
    run_workload(&w, &server);

    let cal = calibrate_trace(&sink.events());
    assert!(cal.faults > 0, "a 30% plan must fault");
    assert!(cal.backoff_seconds > 0.0, "faults must have paid backoff");

    // The adopted fault model is the observed one: the effective
    // invocation price carries exactly the backoff seconds per invocation
    // the trace actually paid — no schedule-mean approximation.
    let params = CostParams::mercury(w.server.doc_count() as f64);
    let adopted = params.with_calibration(&cal).fitted;
    let want = adopted.constants.c_i + cal.backoff_per_invocation();
    assert!(
        (adopted.effective_c_i() - want).abs() < 1e-9,
        "effective_c_i {} vs observed {}",
        adopted.effective_c_i(),
        want
    );

    // And the plain plan_and_execute path (analytic fold) still gives the
    // same rows when handed the calibration instead.
    let q5 = paper::q5(&w);
    let fresh = TextServer::new(w.server.collection().clone());
    let (_, a) = plan_and_execute(
        &q5,
        &w.catalog,
        &fresh,
        CostParams::mercury(w.server.doc_count() as f64),
        ExecutionSpace::PrlResiduals,
    )
    .expect("plain path runs");
    let fresh2 = TextServer::new(w.server.collection().clone());
    let (_, b) = plan_and_execute_with(
        &q5,
        &w.catalog,
        &fresh2,
        CostParams::mercury(w.server.doc_count() as f64),
        ExecutionSpace::PrlResiduals,
        Some(&cal),
    )
    .expect("calibrated path runs");
    assert_eq!(row_strings(&a.table), row_strings(&b.table));
}
