//! Integration: optimizer decisions hold up end to end across seeds —
//! the chosen single-join method is measured-competitive, the PrL space is
//! never worse than left-deep, and plan estimates track measured costs.

use textjoin::core::cost::params::CostParams;
use textjoin::core::exec::plan_and_execute;
use textjoin::core::methods::probe::ProbeSchedule;
use textjoin::core::methods::ExecContext;
use textjoin::core::optimizer::multi::ExecutionSpace;
use textjoin::core::optimizer::single::enumerate_methods;
use textjoin::core::query::prepare;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn worlds() -> Vec<World> {
    [3u64, 17, 29]
        .into_iter()
        .map(|seed| {
            World::generate(WorldSpec {
                seed,
                background_docs: 250,
                students: 60,
                projects: 16,
                ..WorldSpec::default()
            })
        })
        .collect()
}

#[test]
fn chosen_method_is_measured_competitive() {
    for w in worlds() {
        let schema = w.server.collection().schema();
        let params = CostParams::mercury(w.server.doc_count() as f64);
        for (label, q) in [
            ("Q1", paper::q1(&w)),
            ("Q2", paper::q2(&w)),
            ("Q3", paper::q3(&w)),
            ("Q4", paper::q4(&w)),
        ] {
            let p = prepare(&q, &w.catalog, schema).expect("prepares");
            let export = w.server.export_stats();
            let stats = p.statistics_from_export(&export, schema);
            let cands = enumerate_methods(&params, &stats, q.projection, false);
            let mut measured: Vec<(String, f64)> = Vec::new();
            for c in &cands {
                let ctx = ExecContext::new(&w.server);
                let out = textjoin::core::exec::execute_single(
                    &ctx,
                    &p,
                    c,
                    ProbeSchedule::ProbeFirst,
                )
                .expect("runs");
                measured.push((c.label.clone(), out.report.total_cost()));
            }
            let best_measured = measured
                .iter()
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min);
            let chosen_measured = measured[0].1; // cands[0] is the choice
            assert!(
                chosen_measured <= 4.0 * best_measured + 1.0,
                "{label} (seed {}): chose {} at {:.1}s, best measured {:.1}s ({:?})",
                w.spec.seed,
                measured[0].0,
                chosen_measured,
                best_measured,
                measured
            );
        }
    }
}

#[test]
fn prl_never_worse_than_left_deep_across_seeds() {
    for w in worlds() {
        let params = CostParams::mercury(w.server.doc_count() as f64);
        let q5 = paper::q5(&w);
        let (ld, _) =
            plan_and_execute(&q5, &w.catalog, &w.server, params, ExecutionSpace::LeftDeep)
                .expect("left-deep plans");
        let (prl, _) = plan_and_execute(&q5, &w.catalog, &w.server, params, ExecutionSpace::Prl)
            .expect("PrL plans");
        let (ext, _) = plan_and_execute(
            &q5,
            &w.catalog,
            &w.server,
            params,
            ExecutionSpace::PrlResiduals,
        )
        .expect("extended plans");
        assert!(prl.est_cost <= ld.est_cost + 1e-9, "seed {}", w.spec.seed);
        assert!(ext.est_cost <= prl.est_cost + 1e-9, "seed {}", w.spec.seed);
    }
}

#[test]
fn estimates_track_measured_costs() {
    // Estimates need not be exact, but for the executed plan they should
    // be within an order of magnitude — the level of fidelity the paper's
    // "verified that our cost formulas correctly predict" claim implies.
    for w in worlds() {
        let params = CostParams::mercury(w.server.doc_count() as f64);
        let q5 = paper::q5(&w);
        for space in [ExecutionSpace::LeftDeep, ExecutionSpace::Prl] {
            w.server.reset_usage();
            let (planned, outcome) =
                plan_and_execute(&q5, &w.catalog, &w.server, params, space).expect("runs");
            let ratio = planned.est_cost / outcome.total_cost.max(1e-9);
            assert!(
                (0.1..10.0).contains(&ratio),
                "seed {} space {:?}: est {:.1} vs measured {:.1}",
                w.spec.seed,
                space,
                planned.est_cost,
                outcome.total_cost
            );
        }
    }
}

#[test]
fn probe_schedules_cost_tradeoff() {
    // Lazy probing (the paper's pseudocode) never sends more searches than
    // probe-first plus the number of distinct full keys, and both agree on
    // the answer (already covered by the oracle tests; here we check the
    // call-count relationship on the real Q3/Q4).
    for w in worlds() {
        let schema = w.server.collection().schema();
        for q in [paper::q3(&w), paper::q4(&w)] {
            let p = prepare(&q, &w.catalog, schema).expect("prepares");
            let fj = p.foreign_join();
            let ctx = ExecContext::new(&w.server);
            let eager = textjoin::core::methods::probe::probe_tuple_substitution(
                &ctx,
                &fj,
                &[0],
                ProbeSchedule::ProbeFirst,
            )
            .expect("eager runs");
            let lazy = textjoin::core::methods::probe::probe_tuple_substitution(
                &ctx,
                &fj,
                &[0],
                ProbeSchedule::Lazy,
            )
            .expect("lazy runs");
            assert_eq!(eager.table.len(), lazy.table.len());
            // Lazy sends at most one search per distinct full key plus one
            // probe per distinct probe key.
            let max_lazy = eager.report.text.invocations + lazy.table.len() as u64 + 8;
            assert!(lazy.report.text.invocations <= max_lazy);
        }
    }
}
