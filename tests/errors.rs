//! Integration: error surfaces across the loose-integration boundary.
//!
//! Every `TextError` / `MethodError` variant (including the fault-injected
//! ones) must round-trip through `Display` and `std::error::Error`, the
//! transient classification must match the retry layer's contract, and the
//! degradation paths (SJ package splitting under a renegotiated cap,
//! partial `retrieve_all`) must keep answers and charges consistent.

use std::error::Error;

use textjoin::core::methods::sj::semi_join;
use textjoin::core::methods::{ExecContext, ForeignJoin, MethodError, Projection, TextSelection};
use textjoin::rel::schema::RelSchema;
use textjoin::rel::table::Table;
use textjoin::rel::tuple;
use textjoin::rel::value::ValueType;
use textjoin::text::doc::{DocId, Document, TextSchema};
use textjoin::text::faults::{Fault, FaultPlan};
use textjoin::text::index::Collection;
use textjoin::text::parse::parse_search;
use textjoin::text::server::{PartialRetrieveError, TextError, TextServer};
use textjoin::text::shard::PartialShardError;

fn sample_shard_error() -> PartialShardError {
    PartialShardError {
        partial: vec![None, None],
        failed_shard: 1,
        error: TextError::Unavailable,
        epoch: 4,
    }
}

fn all_text_errors() -> Vec<TextError> {
    let parse_err = parse_search("TI=", &TextSchema::bibliographic())
        .expect_err("incomplete query must not parse");
    vec![
        TextError::TooManyTerms { count: 9, max: 4 },
        TextError::UnknownDoc(DocId(7)),
        TextError::Parse(parse_err),
        TextError::Unavailable,
        TextError::Timeout { postings: 123 },
        TextError::CapReduced { new_m: 5 },
        TextError::Shard(Box::new(sample_shard_error())),
    ]
}

#[test]
fn every_text_error_displays_and_is_std_error() {
    let errors = all_text_errors();
    let mut rendered: Vec<String> = Vec::new();
    for e in &errors {
        let msg = e.to_string();
        assert!(!msg.is_empty(), "{e:?} renders empty");
        // Usable through the trait object, like any downstream caller.
        let dyn_err: &dyn Error = e;
        assert_eq!(dyn_err.to_string(), msg);
        rendered.push(msg);
    }
    rendered.sort();
    rendered.dedup();
    assert_eq!(
        rendered.len(),
        errors.len(),
        "each variant needs a distinguishable message"
    );
}

#[test]
fn transient_classification_matches_retry_contract() {
    for e in all_text_errors() {
        let expected = matches!(e, TextError::Unavailable | TextError::Timeout { .. });
        assert_eq!(
            e.is_transient(),
            expected,
            "{e}: only momentary server conditions are retryable verbatim"
        );
    }
}

#[test]
fn every_method_error_displays_and_converts() {
    let variants: Vec<MethodError> = vec![
        MethodError::NotApplicable("RTP needs selections".into()),
        MethodError::Text(TextError::Unavailable),
        MethodError::BadProbeColumns("index 9 out of range".into()),
    ];
    for e in &variants {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        let dyn_err: &dyn Error = e;
        assert_eq!(dyn_err.to_string(), msg);
    }
    // From<TextError> wraps into the Text variant.
    let converted: MethodError = TextError::Timeout { postings: 5 }.into();
    assert!(matches!(
        converted,
        MethodError::Text(TextError::Timeout { postings: 5 })
    ));
}

#[test]
fn partial_retrieve_error_chains_to_its_cause() {
    let e = PartialRetrieveError {
        docs: vec![Document::new(), Document::new()],
        failed: DocId(3),
        error: TextError::Unavailable,
    };
    let msg = e.to_string();
    assert!(msg.contains("2 retrievals"), "message carries progress: {msg}");
    assert!(msg.contains('3'), "message names the failed docid: {msg}");
    let source = e.source().expect("source chains to the TextError");
    assert_eq!(source.to_string(), TextError::Unavailable.to_string());
}

/// The two partial-failure carriers compose: a retrieval that dies because
/// a *shard* died mid-gather chains `PartialRetrieveError` →
/// `TextError::Shard` → `PartialShardError` → the root `TextError`, and
/// every link is reachable through `std::error::Error::source`.
#[test]
fn partial_failures_compose_through_the_source_chain() {
    let shard_err = PartialShardError {
        partial: vec![None, None, None],
        failed_shard: 2,
        error: TextError::Timeout { postings: 41 },
        epoch: 0,
    };
    let e = PartialRetrieveError {
        docs: vec![Document::new()],
        failed: DocId(9),
        error: TextError::Shard(Box::new(shard_err)),
    };

    // Link 1: the retrieve error's source is the shard-carrying TextError.
    let link1 = e.source().expect("retrieve error chains to its cause");
    assert!(link1.to_string().contains("shard 2"), "got: {link1}");

    // Link 2: that TextError's source is the PartialShardError itself,
    // downcastable with its gathered state intact.
    let link2 = link1.source().expect("Shard chains to the partial error");
    let pse = link2
        .downcast_ref::<PartialShardError>()
        .expect("the partial shard state survives the chain");
    assert_eq!(pse.failed_shard, 2);
    assert_eq!(pse.gathered(), 0, "no shard had answered yet");

    // Link 3: the partial error's source is the root fault; non-Shard
    // TextErrors terminate the chain.
    let root = link2.source().expect("partial error chains to the fault");
    assert_eq!(root.to_string(), TextError::Timeout { postings: 41 }.to_string());
    assert!(root.source().is_none(), "the root fault ends the chain");

    // And the same walk works from a MethodError wrapper, as join-method
    // callers see it.
    let m: MethodError = TextError::Shard(Box::new(PartialShardError {
        partial: vec![None],
        failed_shard: 0,
        error: TextError::Unavailable,
        epoch: 0,
    }))
    .into();
    let mut hops = 0;
    let mut cur: Option<&dyn Error> = Some(&m);
    let mut found = false;
    while let Some(err) = cur {
        if err.downcast_ref::<PartialShardError>().is_some() {
            found = true;
        }
        cur = err.source();
        hops += 1;
        assert!(hops < 10, "the chain must terminate");
    }
    assert!(found, "MethodError → TextError::Shard → PartialShardError");
}

/// A `PartialShardError` names the topology epoch the gather was routed at:
/// completion resumes from exactly that epoch, re-scattering only shards a
/// concurrent migration commit touched. The epoch must survive `Display`
/// and the `source` chain alongside the partial state.
#[test]
fn partial_shard_error_carries_its_routing_epoch() {
    let e = sample_shard_error();
    assert_eq!(e.epoch, 4);
    let msg = e.to_string();
    assert!(msg.contains("epoch 4"), "Display names the epoch: {msg}");
    // Wrapped and recovered through the chain, the epoch is intact.
    let wrapped = TextError::Shard(Box::new(sample_shard_error()));
    let link = wrapped.source().expect("Shard chains to the partial error");
    let pse = link
        .downcast_ref::<PartialShardError>()
        .expect("downcast recovers the typed state");
    assert_eq!(pse.epoch, 4, "the routing epoch survives the source chain");
    assert_eq!(pse.failed_shard, 1);
}

/// Eight join keys, term cap 5: SJ packs 4 conjuncts + 1 selection per
/// search. A scripted `CapReduced { new_m: 3 }` hits the second package;
/// SJ must halve it, recompute capacity from the live cap, and finish with
/// the same answer — the renegotiation costs one extra (charged) attempt.
#[test]
fn sj_recovers_by_package_splitting_when_cap_is_lowered_between_batches() {
    let build = |plan: FaultPlan| {
        let schema = TextSchema::bibliographic();
        let ti = schema.field_by_name("title").unwrap();
        let au = schema.field_by_name("author").unwrap();
        let mut coll = Collection::new(schema);
        for i in 0..8 {
            coll.add_document(
                Document::new()
                    .with(ti, "common subject")
                    .with(au, format!("author{i}")),
            );
        }
        let mut server = TextServer::new(coll);
        server.set_max_terms(5);
        server.set_fault_plan(plan);
        server
    };
    let rel_schema = RelSchema::from_columns(vec![("name", ValueType::Str)]);
    let mut rel = Table::new("people", rel_schema);
    for i in 0..8 {
        rel.push(tuple![format!("author{i}")]);
    }
    let fj = |server: &TextServer| ForeignJoin {
        rel: &rel,
        join_cols: vec![rel.col("name")],
        join_fields: vec![server.collection().schema().field_by_name("author").unwrap()],
        selections: vec![TextSelection {
            term: "common".into(),
            field: server.collection().schema().field_by_name("title").unwrap(),
        }],
        projection: Projection::DocIds,
    };

    // Fault-free baseline: 8 keys / 4 per package = 2 searches.
    let clean = build(FaultPlan::none());
    let clean_out = semi_join(&ExecContext::new(&clean), &fj(&clean)).expect("SJ runs");
    assert_eq!(clean_out.table.len(), 8);
    assert_eq!(clean_out.report.text.invocations, 2);

    // The second package (search ordinal 1) gets the cap renegotiation.
    let faulted = build(FaultPlan::scripted(vec![(
        1,
        Fault::CapReduced { new_m: 3 },
    )]));
    let out = semi_join(&ExecContext::new(&faulted), &fj(&faulted)).expect("SJ degrades, not fails");
    assert_eq!(out.table.len(), 8, "same answer under the lowered cap");
    assert_eq!(faulted.max_terms(), 3, "the renegotiated cap is in force");
    // ok(4) + faulted attempt + ok(2) + ok(2): all four attempts charged.
    assert_eq!(out.report.text.invocations, 4);
    assert_eq!(out.report.text.faults, 1);
    assert_eq!(
        out.report.text.retries, 0,
        "CapReduced is not transient — no blind retry, only re-packaging"
    );
}

fn eight_doc_collection() -> Collection {
    let schema = TextSchema::bibliographic();
    let ti = schema.field_by_name("title").unwrap();
    let au = schema.field_by_name("author").unwrap();
    let mut coll = Collection::new(schema);
    for i in 0..8 {
        coll.add_document(
            Document::new()
                .with(ti, "common subject")
                .with(au, format!("author{i}")),
        );
    }
    coll
}

/// Satellite pin: a replicated gather that fails twice — a *different*
/// shard each round — runs one completion round per failure, and each
/// round's span carries the round's own progress (`complete-gather[1/4]`
/// then `complete-gather[2/4]`) instead of the first round's counts being
/// stamped on every retry.
#[test]
fn completion_rounds_carry_their_own_progress_labels() {
    use std::rc::Rc;
    use textjoin::obs::{EventKind, Recorder, RingSink};
    use textjoin::text::expr::SearchExpr;
    use textjoin::text::shard::ShardedTextServer;

    let coll = eight_doc_collection();
    let ti = coll.schema().field_by_name("title").unwrap();
    let mut s = ShardedTextServer::replicated(&coll, 4, 2, 0x5AD);
    for r in 0..2 {
        // Shard 1: both replicas fault their first four searches, so the
        // initial scatter exhausts the 4-attempt policy on the primary
        // leg and the failover leg alike — then the shard recovers in
        // time for the first completion round.
        s.replica_mut(1, r).set_fault_plan(FaultPlan::scripted(
            (0..4).map(|o| (o, Fault::Unavailable)).collect(),
        ));
        // Shard 2: both replicas fault exactly their first search — the
        // first completion round's single attempt per replica fails, the
        // second round's succeeds.
        s.replica_mut(2, r)
            .set_fault_plan(FaultPlan::scripted(vec![(0, Fault::Unavailable)]));
    }
    let sink = Rc::new(RingSink::unbounded());
    s.set_recorder(Some(Recorder::new(sink.clone())));
    let ctx = ExecContext::new(&s);
    let out = ctx
        .search(&SearchExpr::term_in("common", ti))
        .expect("two completion rounds finish the gather");
    assert_eq!(out.ids().len(), 8, "every shard's documents were gathered");

    let labels: Vec<String> = sink
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SpanBegin { label, .. } if label.starts_with("complete-gather[") => {
                Some(label.clone())
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        labels,
        vec!["complete-gather[1/4]", "complete-gather[2/4]"],
        "each completion round is labelled with its own gathered count"
    );
}

/// A completion round that gathers nothing new means some shard is down on
/// every replica: the typed partial error propagates (carrying the best
/// partial state reached) instead of re-scattering forever.
#[test]
fn completion_stops_when_a_round_makes_no_progress() {
    use textjoin::text::expr::SearchExpr;
    use textjoin::text::shard::ShardedTextServer;

    let coll = eight_doc_collection();
    let ti = coll.schema().field_by_name("title").unwrap();
    let mut s = ShardedTextServer::replicated(&coll, 4, 2, 0x5AD);
    for r in 0..2 {
        // Shard 1 recovers after the initial scatter; shard 2 is dead on
        // both replicas, permanently.
        s.replica_mut(1, r).set_fault_plan(FaultPlan::scripted(
            (0..4).map(|o| (o, Fault::Unavailable)).collect(),
        ));
        s.replica_mut(2, r).set_fault_plan(FaultPlan::dead(77));
    }
    let ctx = ExecContext::new(&s);
    let err = ctx
        .search(&SearchExpr::term_in("common", ti))
        .expect_err("a shard dead on every replica must surface");
    match err {
        TextError::Shard(pse) => {
            assert_eq!(pse.failed_shard, 2, "the dead shard is named");
            assert_eq!(
                pse.gathered(),
                2,
                "the error carries the best partial state reached (shards 0 and 1)"
            );
        }
        other => panic!("expected a typed partial error, got {other:?}"),
    }
}

/// A cap too small for even a single conjunct cannot be packaged around:
/// the method reports inapplicability instead of looping.
#[test]
fn sj_surfaces_unpackageable_cap_cleanly() {
    let schema = TextSchema::bibliographic();
    let au = schema.field_by_name("author").unwrap();
    let mut coll = Collection::new(schema);
    coll.add_document(Document::new().with(au, "solo"));
    let mut server = TextServer::new(coll);
    server.set_max_terms(5);
    // The very first package triggers renegotiation down to 1 term — with
    // a 1-term selection, zero conjuncts fit.
    server.set_fault_plan(FaultPlan::scripted(vec![(
        0,
        Fault::CapReduced { new_m: 1 },
    )]));
    let rel_schema = RelSchema::from_columns(vec![("name", ValueType::Str)]);
    let mut rel = Table::new("people", rel_schema);
    rel.push(tuple!["solo"]);
    rel.push(tuple!["other"]);
    let fj = ForeignJoin {
        rel: &rel,
        join_cols: vec![rel.col("name")],
        join_fields: vec![server.collection().schema().field_by_name("author").unwrap()],
        selections: vec![TextSelection {
            term: "anything".into(),
            field: server.collection().schema().field_by_name("title").unwrap(),
        }],
        projection: Projection::DocIds,
    };
    let err = semi_join(&ExecContext::new(&server), &fj).expect_err("cannot fit one conjunct");
    assert!(matches!(err, MethodError::NotApplicable(_)), "got {err:?}");
}
