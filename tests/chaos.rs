//! Chaos oracle: under any *seeded, bounded* transient fault plan, every
//! join method must return exactly the brute-force answer — the injected
//! faults may only cost money (retries, simulated backoff, partially
//! charged timeouts), never change a result. And when retries are
//! exhausted (unbounded consecutive faults), methods must fail with a
//! clean error, never a wrong answer.

use textjoin::core::methods::probe::ProbeSchedule;
use textjoin::core::methods::{ExecContext, ForeignJoin, MethodReport, Projection};
use textjoin::core::runtime::{guarded_probe_rtp, guarded_rtp};
use textjoin::rel::strmatch::contains_term;
use textjoin::rel::table::Table;
use textjoin::text::doc::DocId;
use textjoin::text::faults::{FaultKinds, FaultPlan};
use textjoin::text::server::TextServer;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

fn compact_world(seed: u64) -> World {
    World::generate(WorldSpec {
        seed,
        background_docs: 120,
        students: 30,
        projects: 10,
        ..WorldSpec::default()
    })
}

/// All (tuple index, docid) pairs the join should produce, by direct scan
/// of the collection — no search API, no index.
fn oracle_pairs(fj: &ForeignJoin<'_>, server: &TextServer) -> Vec<(usize, DocId)> {
    let coll = server.collection();
    let mut out = Vec::new();
    for (ti, tuple) in fj.rel.iter().enumerate() {
        'docs: for d in 0..coll.doc_count() {
            let id = DocId(d as u32);
            let doc = coll.document(id).expect("dense docids");
            for sel in &fj.selections {
                if !doc
                    .values(sel.field)
                    .iter()
                    .any(|v| contains_term(v, &sel.term))
                {
                    continue 'docs;
                }
            }
            for (col, field) in fj.join_cols.iter().zip(&fj.join_fields) {
                let Some(needle) = tuple.get(*col).as_str() else {
                    continue 'docs;
                };
                if needle.trim().is_empty()
                    || !doc.values(*field).iter().any(|v| contains_term(v, needle))
                {
                    continue 'docs;
                }
            }
            out.push((ti, id));
        }
    }
    out
}

/// Projects oracle pairs the way the method output is shaped.
fn oracle_shape(fj: &ForeignJoin<'_>, pairs: &[(usize, DocId)]) -> Vec<String> {
    let mut rows: Vec<String> = match fj.projection {
        Projection::RelOnly => {
            let mut tuples: Vec<usize> = pairs.iter().map(|&(t, _)| t).collect();
            tuples.sort_unstable();
            tuples.dedup();
            tuples
                .into_iter()
                .map(|t| fj.rel.rows()[t].to_string())
                .collect()
        }
        Projection::DocIds => {
            let mut ids: Vec<DocId> = pairs.iter().map(|&(_, d)| d).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.iter().map(|d| format!("[{d}]")).collect()
        }
        Projection::Full => pairs
            .iter()
            .map(|&(t, d)| format!("{}+{d}", fj.rel.rows()[t]))
            .collect(),
    };
    rows.sort();
    rows
}

/// Shapes a method output table the same way.
fn method_shape(fj: &ForeignJoin<'_>, table: &Table) -> Vec<String> {
    let mut rows: Vec<String> = match fj.projection {
        Projection::RelOnly => table.iter().map(|r| r.to_string()).collect(),
        Projection::DocIds => table
            .iter()
            .map(|r| {
                format!(
                    "[{}]",
                    r.get(textjoin::rel::schema::ColId(0))
                        .as_str()
                        .expect("docid column")
                )
            })
            .collect(),
        Projection::Full => {
            let rel_arity = fj.rel.schema().len();
            let docid_col = textjoin::rel::schema::ColId(rel_arity);
            table
                .iter()
                .map(|r| {
                    let rel_part = r.project(
                        &(0..rel_arity)
                            .map(textjoin::rel::schema::ColId)
                            .collect::<Vec<_>>(),
                    );
                    format!(
                        "{rel_part}+{}",
                        r.get(docid_col).as_str().expect("docid column")
                    )
                })
                .collect()
        }
    };
    rows.sort();
    rows
}

fn faulted_server(w: &World, seed: u64, rate: f64) -> TextServer {
    let mut s = TextServer::new(w.server.collection().clone());
    // ≤ 2 consecutive faults per operation — strictly below the standard
    // 4-attempt retry budget, so every operation eventually succeeds.
    s.set_fault_plan(FaultPlan::transient(seed, rate, 2));
    s
}

/// The exact cost decomposition must hold on the fault-injected ledger:
/// server charges + simulated backoff + `c_a` × comparisons.
fn assert_decomposition(label: &str, report: &MethodReport, server: &TextServer, c_a: f64) {
    let u = &report.text;
    let k = server.constants();
    let expected_text = k.c_i * u.invocations as f64
        + k.c_p * u.postings_processed as f64
        + k.c_s * u.docs_short as f64
        + k.c_l * u.docs_long as f64
        + u.time_backoff;
    assert!(
        (u.total_cost() - expected_text).abs() < 1e-6,
        "{label}: text cost must decompose into server charges + backoff"
    );
    assert!(
        (report.total_cost() - (expected_text + c_a * report.rtp_comparisons as f64)).abs()
            < 1e-6,
        "{label}: total = text + backoff + c_a × comparisons"
    );
}

#[test]
fn all_methods_survive_transient_faults_with_exact_answers() {
    let mut total_faults_seen = 0u64;
    for world_seed in [7u64, 23] {
        let w = compact_world(world_seed);
        let schema = w.server.collection().schema();
        for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
            let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
                .expect("paper query prepares");
            let fj = p.foreign_join();
            let expected = oracle_shape(&fj, &oracle_pairs(&fj, &w.server));
            for fault_seed in [1u64, 2] {
                for rate in [0.1, 0.3] {
                    let check = |label: String, server: &TextServer, report: &MethodReport, table: &Table| {
                        assert_eq!(
                            method_shape(&fj, table),
                            expected,
                            "{qname}/{label} (world {world_seed}, fault seed \
                             {fault_seed}, rate {rate}) diverged from the oracle"
                        );
                        assert_decomposition(&label, report, server, 1e-5);
                    };

                    macro_rules! run {
                        ($label:expr, $body:expr) => {{
                            let s = faulted_server(&w, fault_seed, rate);
                            let ctx = ExecContext::new(&s);
                            #[allow(clippy::redundant_closure_call)]
                            let out = ($body)(&ctx).expect("bounded faults never exhaust retries");
                            check($label.to_string(), &s, &out.report, &out.table);
                            total_faults_seen += s.usage().faults;
                        }};
                    }

                    run!("TS", |ctx| textjoin::core::methods::ts::tuple_substitution(
                        ctx, &fj, true
                    ));
                    run!("TS-naive", |ctx| {
                        textjoin::core::methods::ts::tuple_substitution(ctx, &fj, false)
                    });
                    if !fj.selections.is_empty() {
                        run!("RTP", |ctx| {
                            textjoin::core::methods::rtp::relational_text_processing(ctx, &fj)
                        });
                    }
                    run!("SJ", |ctx| textjoin::core::methods::sj::semi_join(ctx, &fj));
                    for schedule in [ProbeSchedule::ProbeFirst, ProbeSchedule::Lazy] {
                        run!(format!("P+TS/{schedule:?}"), |ctx| {
                            textjoin::core::methods::probe::probe_tuple_substitution(
                                ctx, &fj, &[0], schedule,
                            )
                        });
                    }
                    run!("P+RTP", |ctx| {
                        textjoin::core::methods::probe::probe_rtp(ctx, &fj, &[0])
                    });
                    // Guarded variants, both sides of the budget.
                    for budget in [0usize, 10_000] {
                        let s = faulted_server(&w, fault_seed, rate);
                        if !fj.selections.is_empty() {
                            let ctx = ExecContext::new(&s);
                            let g = guarded_rtp(&ctx, &fj, budget)
                                .expect("bounded faults never exhaust retries");
                            check(
                                format!("guarded_rtp/{budget}"),
                                &s,
                                &g.outcome.report,
                                &g.outcome.table,
                            );
                            total_faults_seen += s.usage().faults;
                        }
                        let s2 = faulted_server(&w, fault_seed.wrapping_add(99), rate);
                        let ctx2 = ExecContext::new(&s2);
                        let g2 = guarded_probe_rtp(&ctx2, &fj, &[0], budget)
                            .expect("bounded faults never exhaust retries");
                        check(
                            format!("guarded_probe_rtp/{budget}"),
                            &s2,
                            &g2.outcome.report,
                            &g2.outcome.table,
                        );
                        total_faults_seen += s2.usage().faults;
                    }
                }
            }
        }
    }
    assert!(
        total_faults_seen > 100,
        "the chaos plans must actually inject faults (saw {total_faults_seen})"
    );
}

#[test]
fn exhausted_retries_fail_cleanly_never_wrongly() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let p = textjoin::core::query::prepare(&paper::q3(&w), &w.catalog, schema)
        .expect("q3 prepares");
    let fj = p.foreign_join();

    // Rate 1.0, unbounded consecutive faults: every search/retrieve fails
    // past any retry budget. Methods must error out, not fabricate rows.
    let mut s = TextServer::new(w.server.collection().clone());
    s.set_fault_plan(FaultPlan::random(77, 1.0, FaultKinds::transient_only(), 0));
    let ctx = ExecContext::new(&s);

    assert!(textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true).is_err());
    assert!(textjoin::core::methods::rtp::relational_text_processing(&ctx, &fj).is_err());
    assert!(textjoin::core::methods::sj::semi_join(&ctx, &fj).is_err());
    assert!(textjoin::core::methods::probe::probe_tuple_substitution(
        &ctx,
        &fj,
        &[0],
        ProbeSchedule::ProbeFirst
    )
    .is_err());
    assert!(textjoin::core::methods::probe::probe_rtp(&ctx, &fj, &[0]).is_err());
    // The guards degrade to TS first, but TS cannot run either: still a
    // clean error.
    assert!(guarded_rtp(&ctx, &fj, 10).is_err());
    assert!(guarded_probe_rtp(&ctx, &fj, &[0], 10).is_err());
    // Nothing was emitted, but the failed attempts were charged.
    let u = s.usage();
    assert!(u.faults > 0);
    assert!(u.retries > 0);
    assert!(u.time_backoff > 0.0);
}

// ---------------------------------------------------------------------
// Sharded chaos: scatter/gather under per-shard fault plans
// ---------------------------------------------------------------------

use textjoin::core::methods::MethodError;
use textjoin::core::retry::{RetryBudget, RetryPolicy};
use textjoin::text::shard::{PartialShardError, ShardedTextServer};
use textjoin::text::TextService;

fn sharded_faulted(w: &World, seed: u64, rate: f64, n_shards: usize) -> ShardedTextServer {
    let mut s = ShardedTextServer::new(w.server.collection(), n_shards, 0x5AD);
    for i in 0..n_shards {
        // Independent seeded streams per shard, each bounded to ≤2
        // consecutive faults.
        s.shard_mut(i)
            .set_fault_plan(FaultPlan::transient(seed ^ ((i as u64) << 24), rate, 2));
    }
    s
}

/// The aggregate ledger of a sharded server must satisfy the same exact
/// decomposition as a single server's: shard charges + backoff + `c_a` ×
/// comparisons.
fn assert_sharded_decomposition(
    label: &str,
    report: &MethodReport,
    server: &ShardedTextServer,
    c_a: f64,
) {
    let u = &report.text;
    let k = server.constants();
    let expected_text = k.c_i * u.invocations as f64
        + k.c_p * u.postings_processed as f64
        + k.c_s * u.docs_short as f64
        + k.c_l * u.docs_long as f64
        + u.time_backoff;
    assert!(
        (u.total_cost() - expected_text).abs() < 1e-6,
        "{label}: sharded text cost must decompose into shard charges + backoff"
    );
    assert!(
        (report.total_cost() - (expected_text + c_a * report.rtp_comparisons as f64)).abs()
            < 1e-6,
        "{label}: total = shard charges + backoff + c_a × comparisons"
    );
}

/// Walks the `std::error::Error::source` chain from a method error and
/// returns the [`PartialShardError`] it carries, if any.
fn find_partial_shard(err: &MethodError) -> Option<&PartialShardError> {
    let mut cur: Option<&(dyn std::error::Error + 'static)> =
        Some(err as &(dyn std::error::Error + 'static));
    while let Some(e) = cur {
        if let Some(pse) = e.downcast_ref::<PartialShardError>() {
            return Some(pse);
        }
        cur = e.source();
    }
    None
}

#[test]
fn sharded_methods_return_exact_answers_or_typed_partial_failures() {
    let mut total_faults_seen = 0u64;
    let mut ok_runs = 0u32;
    for world_seed in [7u64, 23] {
        let w = compact_world(world_seed);
        let schema = w.server.collection().schema();
        for (qname, q) in [("q3", paper::q3(&w)), ("q4", paper::q4(&w))] {
            let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
                .expect("paper query prepares");
            let fj = p.foreign_join();
            let expected = oracle_shape(&fj, &oracle_pairs(&fj, &w.server));
            for fault_seed in [1u64, 2] {
                for rate in [0.1, 0.3] {
                    macro_rules! run {
                        ($label:expr, $body:expr) => {{
                            let s = sharded_faulted(&w, fault_seed, rate, 4);
                            let budget = RetryBudget::new(RetryPolicy::standard());
                            let ctx = ExecContext::with_budget(&s, &budget);
                            #[allow(clippy::redundant_closure_call)]
                            match ($body)(&ctx) {
                                Ok(out) => {
                                    assert_eq!(
                                        method_shape(&fj, &out.table),
                                        expected,
                                        "{qname}/{} (world {world_seed}, fault seed \
                                         {fault_seed}, rate {rate}) diverged from the \
                                         oracle",
                                        $label
                                    );
                                    assert_sharded_decomposition(
                                        $label,
                                        &out.report,
                                        &s,
                                        1e-5,
                                    );
                                    ok_runs += 1;
                                }
                                Err(e) => {
                                    // A failed run must be a *typed* partial
                                    // failure (or plain transient exhaustion)
                                    // — never a silently wrong answer.
                                    if let Some(pse) = find_partial_shard(&e) {
                                        assert!(pse.failed_shard < 4);
                                        assert!(pse.error.is_transient());
                                    } else {
                                        match e {
                                            MethodError::Text(te) => {
                                                assert!(te.is_transient())
                                            }
                                            other => panic!(
                                                "{qname}/{}: unexpected failure \
                                                 shape: {other}",
                                                $label
                                            ),
                                        }
                                    }
                                }
                            }
                            total_faults_seen += s.usage().faults;
                        }};
                    }

                    run!("TS", |ctx| textjoin::core::methods::ts::tuple_substitution(
                        ctx, &fj, true
                    ));
                    if !fj.selections.is_empty() {
                        run!("RTP", |ctx| {
                            textjoin::core::methods::rtp::relational_text_processing(ctx, &fj)
                        });
                    }
                    run!("SJ", |ctx| textjoin::core::methods::sj::semi_join(ctx, &fj));
                    run!("P+TS", |ctx| {
                        textjoin::core::methods::probe::probe_tuple_substitution(
                            ctx,
                            &fj,
                            &[0],
                            ProbeSchedule::ProbeFirst,
                        )
                    });
                    run!("P+RTP", |ctx| {
                        textjoin::core::methods::probe::probe_rtp(ctx, &fj, &[0])
                    });
                }
            }
        }
    }
    assert!(
        total_faults_seen > 100,
        "the sharded chaos plans must actually inject faults (saw {total_faults_seen})"
    );
    assert!(
        ok_runs > 50,
        "most bounded-fault runs must complete (saw {ok_runs} successes)"
    );
}

#[test]
fn dead_shard_yields_partial_shard_error_with_the_failed_shard() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let p = textjoin::core::query::prepare(&paper::q3(&w), &w.catalog, schema)
        .expect("q3 prepares");
    let fj = p.foreign_join();

    // Shard 2 faults on every operation, unbounded — past any retry
    // budget. The other shards are healthy, so every gather collects
    // shards 0 and 1 before dying at shard 2.
    let mut s = ShardedTextServer::new(w.server.collection(), 4, 0x5AD);
    s.shard_mut(2)
        .set_fault_plan(FaultPlan::random(77, 1.0, FaultKinds::transient_only(), 0));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(&s, &budget);

    let mut errs: Vec<MethodError> = vec![
        textjoin::core::methods::ts::tuple_substitution(&ctx, &fj, true).unwrap_err(),
        textjoin::core::methods::sj::semi_join(&ctx, &fj).unwrap_err(),
        textjoin::core::methods::probe::probe_tuple_substitution(
            &ctx,
            &fj,
            &[0],
            ProbeSchedule::ProbeFirst,
        )
        .unwrap_err(),
        textjoin::core::methods::probe::probe_rtp(&ctx, &fj, &[0]).unwrap_err(),
    ];
    if !fj.selections.is_empty() {
        errs.push(
            textjoin::core::methods::rtp::relational_text_processing(&ctx, &fj).unwrap_err(),
        );
    }
    for err in &errs {
        let pse = find_partial_shard(err)
            .unwrap_or_else(|| panic!("expected a PartialShardError in: {err}"));
        assert_eq!(pse.failed_shard, 2, "the dead shard must be named");
        assert!(pse.error.is_transient(), "the underlying fault is transient");
        // Results gathered before the failure ride along in the error.
        for (i, part) in pse.partial.iter().enumerate() {
            if i < pse.failed_shard && !pse.partial.is_empty() {
                assert!(part.is_some(), "shard {i} answered before the failure");
            }
        }
    }
    // The dead shard's ledger carries the exhausted attempts; the healthy
    // shards were still charged for their successful scatter legs.
    assert!(s.shard_usage(2).faults > 0);
    assert!(s.shard_usage(2).retries > 0);
    assert!(s.usage().time_backoff > 0.0);
    assert!(s.shard_usage(0).invocations > 0);
    // The adaptive budget has marked shard 2 as dead and tightened it.
    assert!(budget.rate_of(2) > budget.rate_of(0));
}

// ---------------------------------------------------------------------
// Replicated chaos: failover routing, circuit breakers, gather completion
// ---------------------------------------------------------------------

use std::rc::Rc;

use textjoin::obs::{Recorder, RingSink};
use textjoin::text::faults::Fault;

/// The replication acceptance bar: with R = 2 and one shard's primary
/// permanently dead, every method returns exactly the brute-force answer
/// — no `TextError::Shard` ever escapes to the caller, because every
/// scatter leg fails over to the surviving replica.
#[test]
fn replicated_dead_primary_yields_exact_answers_with_no_shard_errors() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let p = textjoin::core::query::prepare(&paper::q3(&w), &w.catalog, schema)
        .expect("q3 prepares");
    let fj = p.foreign_join();
    let expected = oracle_shape(&fj, &oracle_pairs(&fj, &w.server));

    // Same topology as the R=1 dead-shard test above, but with a second
    // replica per shard: the identical fault now costs money instead of
    // failing the query.
    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    let dead = s.primary_of(2);
    s.replica_mut(2, dead).set_fault_plan(FaultPlan::dead(77));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(&s, &budget);

    macro_rules! run {
        ($label:expr, $body:expr) => {{
            #[allow(clippy::redundant_closure_call)]
            let out = ($body)(&ctx).unwrap_or_else(|e| {
                panic!("{}: failover must absorb the dead primary: {e}", $label)
            });
            assert_eq!(
                method_shape(&fj, &out.table),
                expected,
                "{}: diverged from the oracle under a dead primary",
                $label
            );
        }};
    }

    run!("TS", |ctx| textjoin::core::methods::ts::tuple_substitution(
        ctx, &fj, true
    ));
    if !fj.selections.is_empty() {
        run!("RTP", |ctx| {
            textjoin::core::methods::rtp::relational_text_processing(ctx, &fj)
        });
    }
    run!("SJ", |ctx| textjoin::core::methods::sj::semi_join(ctx, &fj));
    run!("P+TS", |ctx| {
        textjoin::core::methods::probe::probe_tuple_substitution(
            ctx,
            &fj,
            &[0],
            ProbeSchedule::ProbeFirst,
        )
    });
    run!("P+RTP", |ctx| {
        textjoin::core::methods::probe::probe_rtp(ctx, &fj, &[0])
    });

    // The dead primary was attempted (and charged) until the breaker
    // opened; the surviving replica carried every read for shard 2.
    assert!(s.replica(2, dead).usage().faults > 0, "the death was paid for");
    assert!(
        s.replica(2, 1 - dead).usage().invocations > 0,
        "the secondary served"
    );
    assert!(budget.breaker_open(2), "the per-shard breaker latched open");
    assert!(!budget.breaker_open(0), "healthy shards keep their breakers closed");
    // Failover charges are real charges: the aggregate still decomposes
    // into the sum of the shard invoices.
    let mut sum = textjoin::text::server::Usage::default();
    for i in 0..s.shard_count() {
        sum.accumulate(&s.shard_usage(i));
    }
    assert_eq!(s.usage().invocations, sum.invocations);
    assert_eq!(s.usage().faults, sum.faults);
}

/// Breaker lifecycle, scripted end to end: a primary that faults its
/// first 30 search attempts and then recovers drives the shard's breaker
/// open (consecutive exhausted legs at a dead-level EWMA), keeps it open
/// across the fixed-cadence half-open probes that still find it down, and
/// closes it on the first probe that succeeds — after which the primary
/// serves again. The whole event trace must be byte-identical across two
/// runs.
#[test]
fn breaker_opens_probes_and_closes_with_byte_identical_event_traces() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let au = schema.field_by_name("author").expect("author field");
    let student = w.catalog.table("student").expect("student table");
    let name = student.rows()[0]
        .get(student.col("name"))
        .as_str()
        .expect("student names are strings")
        .to_owned();
    let expr = textjoin::text::expr::SearchExpr::term_in(&name, au);
    let fault_free = w.server.search(&expr).expect("healthy search").ids();

    let run = || {
        // One logical shard, two replicas: every search is a single
        // routed leg, so the breaker's state drives the whole trace.
        let mut s = ShardedTextServer::replicated(w.server.collection(), 1, 2, 0x5AD);
        let primary = s.primary_of(0);
        let script: Vec<(u64, Fault)> = (0..30).map(|o| (o, Fault::Unavailable)).collect();
        s.replica_mut(0, primary).set_fault_plan(FaultPlan::scripted(script));
        let sink = Rc::new(RingSink::unbounded());
        s.set_recorder(Some(Recorder::new(sink.clone())));
        let budget = RetryBudget::new(RetryPolicy::standard());
        let ctx = ExecContext::with_budget(&s, &budget);
        for i in 0..80 {
            let r = ctx
                .search(&expr)
                .unwrap_or_else(|e| panic!("search {i}: the replica always serves: {e}"));
            assert_eq!(r.ids(), fault_free, "search {i} diverged");
        }
        assert!(!budget.breaker_open(0), "the recovered primary closed the breaker");
        let trace: Vec<String> = sink.events().iter().map(|e| e.to_jsonl()).collect();
        trace
    };

    let a = run();
    let b = run();
    assert_eq!(a, b, "the breaker event trace must be byte-identical across runs");

    let at = |what: &str| -> Vec<usize> {
        a.iter()
            .enumerate()
            .filter(|(_, l)| l.contains(&format!("\"type\":\"{what}\"")))
            .map(|(i, _)| i)
            .collect()
    };
    let opens = at("circuit_open");
    let closes = at("circuit_close");
    let failovers = at("failover");
    assert_eq!(opens.len(), 1, "exactly one open transition");
    assert_eq!(closes.len(), 1, "exactly one close transition");
    assert!(opens[0] < closes[0], "open precedes close");
    assert!(
        failovers.first().is_some_and(|&f| f < opens[0]),
        "failover legs precede the open (the EWMA needs evidence)"
    );
    assert!(
        failovers.iter().any(|&f| opens[0] < f && f < closes[0]),
        "while open, reads are served by the replica"
    );
    assert!(
        failovers.iter().all(|&f| f < closes[0]),
        "after the close, the recovered primary serves directly"
    );
}

/// Gather completion at the executor level: when *every* replica of one
/// shard exhausts its scripted faults mid-gather, the search surfaces a
/// partial-shard error internally — and the completion path re-scatters
/// only the missing shards, reusing the already-paid partial results, so
/// the caller still gets the full answer.
#[test]
fn gather_completion_resumes_from_the_partial_without_rebuying_shards() {
    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let au = schema.field_by_name("author").expect("author field");
    let student = w.catalog.table("student").expect("student table");
    let name = student.rows()[0]
        .get(student.col("name"))
        .as_str()
        .expect("student names are strings")
        .to_owned();
    let expr = textjoin::text::expr::SearchExpr::term_in(&name, au);
    let fault_free = w.server.search(&expr).expect("healthy search").ids();

    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    // Shard 2: the primary faults its first 10 search attempts (past any
    // adaptive leg), the secondary its first 4 (exactly the base failover
    // leg) — so the first gather loses shard 2 on both replicas, and the
    // completion re-scatter finds the secondary recovered.
    let primary = s.primary_of(2);
    s.replica_mut(2, primary).set_fault_plan(FaultPlan::scripted(
        (0..10).map(|o| (o, Fault::Unavailable)).collect(),
    ));
    s.replica_mut(2, 1 - primary).set_fault_plan(FaultPlan::scripted(
        (0..4).map(|o| (o, Fault::Unavailable)).collect(),
    ));
    let sink = Rc::new(RingSink::unbounded());
    s.set_recorder(Some(Recorder::new(sink.clone())));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(&s, &budget);

    let r = ctx.search(&expr).expect("completion must rescue the gather");
    assert_eq!(r.ids(), fault_free, "the completed gather is exact");
    // The healthy shards' results were reused, not re-bought: one scatter
    // leg each, despite the second pass.
    assert_eq!(s.shard_usage(0).invocations, 1);
    assert_eq!(s.shard_usage(1).invocations, 1);
    // The completion ran under its named span, carrying the
    // gathered-k-of-n attribute.
    let trace: Vec<String> = sink.events().iter().map(|e| e.to_jsonl()).collect();
    assert!(
        trace.iter().any(|l| l.contains("complete-gather[2/4]")),
        "the completion span records how much of the gather was already paid for"
    );
}

/// Completion × migration interplay: the same lost-shard gather as above,
/// but while a paced online migration commits batches *between the
/// query's legs* — so the partial carries an epoch the topology has
/// already moved past. The staleness loop re-scatters only the shards the
/// commits touched, the completion pass re-scatters only the missing
/// shard, untouched shards keep their single paid invoice, and the answer
/// is still exact.
#[test]
fn gather_completion_stays_exact_while_a_migration_commits_between_legs() {
    use textjoin::text::rebalance::{MigrationPlan, Move, MoveStatus};

    let w = compact_world(7);
    let schema = w.server.collection().schema();
    let au = schema.field_by_name("author").expect("author field");
    let student = w.catalog.table("student").expect("student table");
    let name = student.rows()[0]
        .get(student.col("name"))
        .as_str()
        .expect("student names are strings")
        .to_owned();
    let expr = textjoin::text::expr::SearchExpr::term_in(&name, au);
    let fault_free = w.server.search(&expr).expect("healthy search").ids();

    let mut s = ShardedTextServer::replicated(w.server.collection(), 4, 2, 0x5AD);
    let n = w.server.collection().doc_count() as u32;
    s.begin_migration(MigrationPlan::new(
        vec![Move { range: (DocId(0), DocId(n)), src: 1, dst: 3 }],
        8,
    ));
    // A transfer batch commits before every query leg: the gather races
    // live epoch bumps on shards 1 and 3 the whole way through.
    s.set_migration_pacing(1);
    // Shard 2 loses both replicas on the first pass (primary 10 scripted
    // faults, secondary 4 — the base failover leg), then recovers for the
    // completion pass. The migration never touches shard 2, so these
    // scripts only serve query legs.
    let primary = s.primary_of(2);
    s.replica_mut(2, primary).set_fault_plan(FaultPlan::scripted(
        (0..10).map(|o| (o, Fault::Unavailable)).collect(),
    ));
    s.replica_mut(2, 1 - primary).set_fault_plan(FaultPlan::scripted(
        (0..4).map(|o| (o, Fault::Unavailable)).collect(),
    ));
    let sink = Rc::new(RingSink::unbounded());
    s.set_recorder(Some(Recorder::new(sink.clone())));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(&s, &budget);

    let r = ctx
        .search(&expr)
        .expect("completion must rescue the gather mid-migration");
    assert_eq!(r.ids(), fault_free, "the completed gather is exact mid-migration");
    // Shard 0 is neither faulted nor touched by any move: the staleness
    // re-scatter (shards 1 and 3) and the completion re-scatter (shard 2)
    // both leave its single paid leg alone.
    assert_eq!(
        s.shard_usage(0).invocations,
        1,
        "an untouched shard's result is reused, not re-bought"
    );
    let trace: Vec<String> = sink.events().iter().map(|e| e.to_jsonl()).collect();
    assert!(
        trace.iter().any(|l| l.contains("migration_batch")),
        "transfer batches committed inside the query window"
    );
    assert!(
        trace.iter().any(|l| l.contains("complete-gather")),
        "the lost shard went through the completion path"
    );
    // The interrupted-then-resumed topology still drains to completion.
    let mut steps = 0u32;
    while !s.journal().expect("journal exists").finished() {
        let _ = s.migrate_batch();
        steps += 1;
        assert!(steps < 10_000, "migration failed to drain");
    }
    assert!(s
        .journal()
        .expect("journal exists")
        .entries
        .iter()
        .all(|e| e.status == MoveStatus::Done));
}
