//! The windowed monitor's acceptance tests: the advice closed loop runs
//! end to end through the migration engine, and the drift watchdog flags
//! a repricing within one trailing window while staying silent on a
//! faithful trace.
//!
//! The monitor's *passivity* (attaching one never changes a result row or
//! a ledger field) is pinned separately in `tests/audit.rs`.

use std::rc::Rc;

use textjoin::core::methods::probe::ProbeSchedule;
use textjoin::core::methods::{ExecContext, ForeignJoin, MethodError, MethodOutcome};
use textjoin::core::retry::{RetryBudget, RetryPolicy};
use textjoin::obs::{Event, EventKind, Monitor, MonitorConfig, Recorder};
use textjoin::text::faults::FaultPlan;
use textjoin::text::rebalance::{MigrationPlan, MoveStatus};
use textjoin::text::server::TextServer;
use textjoin::text::shard::ShardedTextServer;
use textjoin::workload::paper;
use textjoin::workload::world::{World, WorldSpec};

const N_SHARDS: usize = 4;
const N_REPLICAS: usize = 2;
const PARTITION_SEED: u64 = 0x5AD;
const HOT_SHARD: usize = 1;
const FAULT_RATE: f64 = 0.35;

fn compact_world(seed: u64) -> World {
    World::generate(WorldSpec {
        seed,
        background_docs: 120,
        students: 30,
        projects: 10,
        ..WorldSpec::default()
    })
}

fn run_one(
    ctx: &ExecContext<'_>,
    fj: &ForeignJoin<'_>,
    method: &str,
) -> Result<MethodOutcome, MethodError> {
    match method {
        "TS" => textjoin::core::methods::ts::tuple_substitution(ctx, fj, true),
        "RTP" => textjoin::core::methods::rtp::relational_text_processing(ctx, fj),
        "SJ" => textjoin::core::methods::sj::semi_join(ctx, fj),
        "P+TS" => textjoin::core::methods::probe::probe_tuple_substitution(
            ctx,
            fj,
            &[0],
            ProbeSchedule::ProbeFirst,
        ),
        "P+RTP" => textjoin::core::methods::probe::probe_rtp(ctx, fj, &[0]),
        other => panic!("unknown method {other}"),
    }
}

fn methods_for(fj: &ForeignJoin<'_>) -> Vec<&'static str> {
    let mut m = vec!["TS", "SJ", "P+TS", "P+RTP"];
    if !fj.selections.is_empty() {
        m.insert(1, "RTP");
    }
    m
}

/// A replicated server whose `HOT_SHARD` replicas fault transiently —
/// retries and backoff inflate that shard's invoice share, which is the
/// signal the skew detector watches.
fn degraded_server(w: &World) -> ShardedTextServer {
    let mut s =
        ShardedTextServer::replicated(w.server.collection(), N_SHARDS, N_REPLICAS, PARTITION_SEED);
    for r in 0..N_REPLICAS {
        s.replica_mut(HOT_SHARD, r).set_fault_plan(FaultPlan::transient(
            0x5EA7 ^ ((r as u64) << 32),
            FAULT_RATE,
            2,
        ));
    }
    s
}

/// Runs the compact paper workload on `s` with a live monitor attached,
/// returning the monitor and the per-shard ledger invoice shares.
fn monitored_workload(w: &World, s: &ShardedTextServer, cfg: MonitorConfig) -> (Rc<Monitor>, Vec<f64>) {
    let schema = w.server.collection().schema();
    let mon = Rc::new(Monitor::new(cfg));
    s.set_recorder(Some(Recorder::new(mon.clone())));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(s, &budget);
    for q in [paper::q3(w), paper::q4(w)] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for method in methods_for(&fj) {
            run_one(&ctx, &fj, method).expect("bounded faults never exhaust retries");
        }
    }
    mon.finish();
    s.set_recorder(None);
    let totals: Vec<f64> = (0..N_SHARDS).map(|i| s.shard_usage(i).total_cost()).collect();
    let sum: f64 = totals.iter().sum();
    (mon, totals.iter().map(|t| t / sum).collect())
}

/// The tentpole acceptance: the skew detector trips on the degraded
/// shard, its advice converts to a [`MigrationPlan`] and drains through
/// the online migration engine, and the identical workload afterwards
/// books a measurably lower invoice share on that shard.
#[test]
fn advice_closed_loop_reduces_the_hot_shard_share() {
    let w = compact_world(7);
    let cfg = || MonitorConfig::new(100.0).with_skew(400_000, 320_000);

    let before_server = degraded_server(&w);
    let (mon, shares_before) = monitored_workload(&w, &before_server, cfg());
    let advice = mon.advice();
    let adv = advice.first().expect("the degraded shard must trip the skew detector");
    assert_eq!(adv.src, HOT_SHARD, "advice targets the degraded shard");
    assert!(adv.lo < adv.hi && adv.hits > 0);
    // The advisory also surfaced on the alert stream, disjoint from the
    // recorded trace (its own dense sequence numbers).
    let alerts = mon.alerts();
    assert!(alerts
        .iter()
        .any(|e| matches!(e.kind, EventKind::RebalanceAdvice { .. })));
    for (i, ev) in alerts.iter().enumerate() {
        assert_eq!(ev.seq, i as u64, "alert stream has its own sequence");
    }

    // Execute exactly the advised plan through the migration engine. The
    // degraded replicas keep faulting; refused batches resume from the
    // journal, so the drain terminates.
    let mut after_server = degraded_server(&w);
    let journal = after_server.begin_migration(MigrationPlan::from_advice(adv, 16));
    let staged: u64 = journal.entries.iter().map(|e| e.docs).sum();
    assert!(staged > 0, "the advised range must stage documents");
    let mut steps = 0u32;
    while !after_server.journal().expect("journal exists").finished() {
        let _ = after_server.migrate_batch();
        steps += 1;
        assert!(steps < 10_000, "advice migration failed to drain");
    }
    assert!(after_server
        .journal()
        .expect("journal exists")
        .entries
        .iter()
        .all(|e| e.status == MoveStatus::Done));

    let (_, shares_after) = monitored_workload(&w, &after_server, cfg());
    assert!(
        shares_after[HOT_SHARD] < shares_before[HOT_SHARD],
        "executing the advice must lower the hot shard's invoice share: \
         {shares_before:?} -> {shares_after:?}"
    );
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    assert!(
        max(&shares_after) < max(&shares_before),
        "the advised move must lower the max share: {shares_before:?} -> {shares_after:?}"
    );
}

/// Records a healthy single-server run of Q3/Q4 (priced exactly at the
/// Mercury constants) for the drift tests.
fn healthy_trace(w: &World) -> Vec<Event> {
    use textjoin::obs::RingSink;

    let schema = w.server.collection().schema();
    let s = TextServer::new(w.server.collection().clone());
    let sink = Rc::new(RingSink::unbounded());
    s.set_recorder(Some(Recorder::new(sink.clone())));
    let ctx = ExecContext::new(&s);
    for q in [paper::q3(w), paper::q4(w)] {
        let p = textjoin::core::query::prepare(&q, &w.catalog, schema)
            .expect("paper query prepares");
        let fj = p.foreign_join();
        for method in methods_for(&fj) {
            run_one(&ctx, &fj, method).expect("healthy server never faults");
        }
    }
    sink.events()
}

/// The drift watchdog stays silent replaying the faithful trace and flags
/// the repriced component within one trailing window of the perturbation.
#[test]
fn drift_watchdog_flags_repricing_within_one_trailing_window() {
    use textjoin::core::cost::params::CostParams;

    const WINDOW: f64 = 40.0;
    const TRAILING: usize = 4;

    let w = compact_world(7);
    let events = healthy_trace(&w);
    let params = CostParams::mercury(w.server.doc_count() as f64);
    let cfg = || {
        MonitorConfig::new(WINDOW)
            .with_baseline(
                params.constants.c_i,
                params.constants.c_p,
                params.constants.c_s,
                params.constants.c_l,
            )
            .with_drift(1, TRAILING, 0.25)
    };

    // Faithful replay: the trace is priced exactly at the baseline, so
    // the periodic re-fit never alerts.
    let clean = Monitor::replay(cfg(), &events);
    assert!(
        clean
            .alerts()
            .iter()
            .all(|e| !matches!(e.kind, EventKind::DriftAlert { .. })),
        "faithful trace must not flag drift"
    );

    // Inject a repricing: from the halfway clock on, every invocation
    // costs 1.5×. The charges stay linear — just in a moved c_i.
    let half = events.last().expect("trace is non-empty").clock / 2.0;
    let perturbed: Vec<Event> = events
        .iter()
        .map(|ev| {
            let mut ev = ev.clone();
            if ev.clock >= half {
                if let EventKind::Call { charge, .. } = &mut ev.kind {
                    charge.time_invocation *= 1.5;
                }
            }
            ev
        })
        .collect();
    let mon = Monitor::replay(cfg(), &perturbed);
    let flags: Vec<(u64, &'static str)> = mon
        .alerts()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::DriftAlert { window, component, drifted: true, .. } => {
                Some((window, component))
            }
            _ => None,
        })
        .collect();
    let first_c_i = flags
        .iter()
        .find(|(_, c)| *c == "c_i")
        .map(|&(w, _)| w)
        .expect("the repriced c_i must be flagged");
    let perturbed_from = (half / WINDOW).floor() as u64;
    assert!(
        first_c_i >= perturbed_from,
        "flagged before the perturbation began: w{first_c_i} < w{perturbed_from}"
    );
    assert!(
        first_c_i < perturbed_from + TRAILING as u64,
        "flag must land within one trailing window of the repricing: \
         w{first_c_i} vs perturbation at w{perturbed_from} (trail {TRAILING})"
    );
}

/// Offline replay of a live-monitored run's trace reproduces the live
/// windows and alerts byte-for-byte — the two ingestion paths can never
/// drift apart.
#[test]
fn offline_replay_matches_the_live_tee() {
    use textjoin::obs::{parse_jsonl, FanoutSink, JsonlSink, Sink};

    let w = compact_world(7);
    let s = degraded_server(&w);
    let schema = w.server.collection().schema();
    let cfg = || MonitorConfig::new(100.0).with_skew(400_000, 320_000);
    let jsonl = Rc::new(JsonlSink::new());
    let live = Rc::new(Monitor::new(cfg()));
    let tee = Rc::new(FanoutSink::new(vec![
        jsonl.clone() as Rc<dyn Sink>,
        live.clone(),
    ]));
    s.set_recorder(Some(Recorder::new(tee)));
    let budget = RetryBudget::new(RetryPolicy::standard());
    let ctx = ExecContext::with_budget(&s, &budget);
    let q = paper::q3(&w);
    let p = textjoin::core::query::prepare(&q, &w.catalog, schema).expect("q3 prepares");
    let fj = p.foreign_join();
    for method in methods_for(&fj) {
        run_one(&ctx, &fj, method).expect("bounded faults never exhaust retries");
    }
    live.finish();

    let events = parse_jsonl(&jsonl.contents()).expect("recorded trace parses");
    let replayed = Monitor::replay(cfg(), &events);
    assert_eq!(
        replayed.render_table(),
        live.render_table(),
        "offline replay diverged from the live monitor"
    );
    assert_eq!(replayed.windows(), live.windows());
    assert_eq!(replayed.advice(), live.advice());
}
