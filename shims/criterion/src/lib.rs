//! Workspace-local, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the criterion 0.5 API the bench files
//! use: `Criterion` with the `sample_size`/`warm_up_time`/
//! `measurement_time` builder, `bench_function`, `benchmark_group` +
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `BatchSize`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! It measures with plain `std::time::Instant` and prints one line per
//! benchmark (median-free mean over the measurement window). No plots, no
//! statistics, no baseline storage — comparative numbers only, which is
//! all the repo's quick profiles ever promised.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness configuration (shimmed `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up, self.measurement);
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.full, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

/// Batch sizing hint — accepted for API parity, ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// (total measured time, iterations) filled in by `iter`/`iter_batched`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up,
            measurement,
            measured: None,
        }
    }

    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measurement || iters < self.sample_size as u64 {
            let t = Instant::now();
            std::hint::black_box(routine());
            total += t.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine(setup()));
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measurement || iters < self.sample_size as u64 {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.measured = Some((total, iters));
    }

    fn report(&self, id: &str) {
        match self.measured {
            Some((total, iters)) if iters > 0 => {
                let mean_ns = total.as_nanos() as f64 / iters as f64;
                println!("bench {id:<40} {:>14.1} ns/iter ({iters} iters)", mean_ns);
            }
            _ => println!("bench {id:<40} (no measurement)"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran >= 3);
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
