//! Workspace-local, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the proptest API its property tests
//! use: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::select`, `prop::bool::ANY`, numeric-range strategies,
//! simple `"[a-z]{m,n}"` string patterns, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! - generation is a seeded splitmix64 stream keyed off the test name, so
//!   every run explores the identical case sequence (CLAUDE.md requires
//!   determinism — there is deliberately no entropy source here);
//! - there is no shrinking: a failing case panics with the plain
//!   `assert!`/`assert_eq!` message for the drawn values.

use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed derived from the test's name (FNV-1a) so distinct tests draw
    /// distinct — but stable — case sequences.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seeded(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n` (n must be non-zero).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A deterministic value generator (the shimmed `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Mapped<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Mapped { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Bounded recursive strategy: each level picks the leaf or one more
    /// application of `recurse`, so trees never exceed `depth` levels.
    /// (`_desired_size` / `_branch` are accepted for signature parity.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = Union::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
        }
        cur
    }
}

/// `prop_map` adapter.
pub struct Mapped<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Mapped<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice between strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strings matching the single supported pattern shape `[x-y]{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi, min_len, max_len) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?} (shim supports [x-y]{{m,n}})"));
        let len = min_len + rng.below(max_len - min_len + 1);
        let span = (hi as u32 - lo as u32 + 1) as usize;
        (0..len)
            .map(|_| char::from_u32(lo as u32 + rng.below(span) as u32).unwrap())
            .collect()
    }
}

/// Parses `[x-y]{m,n}` into `(x, y, m, n)`.
fn parse_char_class_pattern(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let mut chars = rest.chars();
    let lo = chars.next()?;
    if chars.next()? != '-' {
        return None;
    }
    let hi = chars.next()?;
    let rest = chars.as_str().strip_prefix("]{")?;
    let body = rest.strip_suffix('}')?;
    let (m, n) = body.split_once(',')?;
    let (m, n) = (m.parse().ok()?, n.parse().ok()?);
    if lo > hi || m > n {
        return None;
    }
    Some((lo, hi, m, n))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
}

// ---------------------------------------------------------------------------
// prop::collection / prop::sample / prop::bool
// ---------------------------------------------------------------------------

/// Length bound for `collection::vec` (exclusive upper end).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: 'static> {
        items: &'static [T],
    }

    pub fn select<T: Clone + 'static>(items: &'static [T]) -> Select<T> {
        assert!(!items.is_empty(), "select over empty slice");
        Select { items }
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len())].clone()
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    pub struct BoolStrategy;

    /// Either boolean, uniformly.
    pub const ANY: BoolStrategy = BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Run configuration (shimmed `ProptestConfig`) — only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($s) ),+ ])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_vec_in_bounds() {
        let mut rng = TestRng::seeded(5);
        let s = prop::collection::vec(0i64..5, 1..4);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }

    #[test]
    fn string_pattern_shape() {
        let mut rng = TestRng::seeded(6);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,5}", &mut rng);
            assert!((1..=5).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 1,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        fn leaf_sum(t: &T) -> i64 {
            match t {
                T::Leaf(v) => *v,
                T::Node(cs) => cs.iter().map(leaf_sum).sum(),
            }
        }
        let strat = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 3, |inner| {
                prop_oneof![
                    prop::collection::vec(inner.clone(), 1..4).prop_map(T::Node),
                    (inner.clone(), inner).prop_map(|(a, b)| T::Node(vec![a, b])),
                ]
            })
            .boxed();
        let mut rng = TestRng::seeded(7);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4);
            assert!((0..270).contains(&leaf_sum(&t)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Macro round-trip: args bind, asserts fire.
        #[test]
        fn macro_binds_args(xs in prop::collection::vec(0u8..4, 0..6), b in prop::bool::ANY) {
            prop_assert!(xs.len() < 6, "len {} flag {}", xs.len(), b);
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 4).count(), 0);
        }
    }
}
