//! Workspace-local, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `rand` 0.8 API this project
//! actually uses: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is a splitmix64 stream — deterministic for a given seed,
//! which is all the workload generator requires (CLAUDE.md: no unseeded
//! randomness). It makes no statistical-quality or value-compatibility
//! claims versus upstream `rand`; recorded experiment numbers are tied to
//! this generator.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit state advance (splitmix64, Steele et al.).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seedable RNG constructor trait (API-compatible subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Random value generation trait (API-compatible subset).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform draw in `[0, 1)`.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.unit_f64() < p
    }
}

pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic seeded generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (API-compatible subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..13usize);
            assert!(v < 13);
            let w = rng.gen_range(1..=6i64);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }
}
